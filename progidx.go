// Package progidx is a Go implementation of Progressive Indexing
// (Holanda, Raasveldt, Manegold, Mühleisen: "Progressive Indexes:
// Indexing for Interactive Data Analysis", PVLDB 12(13), 2019).
//
// A progressive index answers every query exactly while spending a
// small, controllable budget of extra work per query on building the
// index. After enough queries it converges to a full B+-tree; before
// that, each query is answered from the partial index plus whatever
// part of the data is not indexed yet. Four algorithms are provided —
// Progressive Quicksort, Progressive Radixsort (MSD), Progressive
// Bucketsort (equi-height) and Progressive Radixsort (LSD) — plus the
// adaptive-indexing baselines the paper compares against (database
// cracking variants) and the Full Scan / Full Index reference points.
//
// Quick start:
//
//	idx, err := progidx.New(values, progidx.Options{
//	    Strategy: progidx.StrategyRadixMSD,
//	    Budget:   2 * time.Millisecond, // extra indexing time per query
//	    Adaptive: true,                 // keep total query time constant
//	})
//	res := idx.Query(lo, hi) // SUM/COUNT over lo <= v <= hi, inclusive
//
// Queries are inclusive range aggregates, matching the paper's
// SELECT SUM(A) WHERE A BETWEEN lo AND hi workload. Every Query call
// may reorganize the index internally; answers are always exact.
//
// Use Recommend to pick a strategy via the paper's Figure 11 decision
// tree.
package progidx

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/cracking"
	"repro/internal/imprints"
	"repro/internal/phash"
)

// Result is the answer to a range aggregate: the SUM and COUNT of the
// matching values.
type Result = column.Result

// Stats describes the work a progressive index performed on the most
// recent query (phase, δ, cost-model prediction).
type Stats = core.Stats

// Phase is a progressive index's lifecycle phase.
type Phase = core.Phase

// Re-exported lifecycle phases.
const (
	PhaseCreation      = core.PhaseCreation
	PhaseRefinement    = core.PhaseRefinement
	PhaseConsolidation = core.PhaseConsolidation
	PhaseDone          = core.PhaseDone
)

// Index is the behaviour shared by every index in this module. Query
// answers the inclusive range [lo, hi] exactly and may spend budgeted
// work refining the index as a side effect.
type Index interface {
	Name() string
	Query(lo, hi int64) Result
	Converged() bool
}

// ProgressiveIndex extends Index with the progressive-specific
// introspection: the lifecycle phase and per-query work stats.
type ProgressiveIndex interface {
	Index
	Phase() Phase
	LastStats() Stats
}

// Strategy selects an indexing technique.
type Strategy int

// Available strategies: the four progressive algorithms of the paper,
// the adaptive-indexing baselines, and the two reference points.
const (
	StrategyQuicksort Strategy = iota
	StrategyRadixMSD
	StrategyBucketsort
	StrategyRadixLSD
	StrategyFullScan
	StrategyFullIndex
	StrategyStandardCracking
	StrategyStochasticCracking
	StrategyProgressiveStochastic
	StrategyCoarseGranular
	StrategyAdaptiveAdaptive
	// StrategyProgressiveHash and StrategyImprints implement the two
	// "Indexing Methods" extensions of the paper's future-work section
	// (§6): a progressively filled hash table that accelerates point
	// queries, and progressively built column imprints, a secondary
	// index that never reorders the column.
	StrategyProgressiveHash
	StrategyImprints
)

// String implements fmt.Stringer using the paper's abbreviations.
func (s Strategy) String() string {
	switch s {
	case StrategyQuicksort:
		return "PQ"
	case StrategyRadixMSD:
		return "PMSD"
	case StrategyBucketsort:
		return "PB"
	case StrategyRadixLSD:
		return "PLSD"
	case StrategyFullScan:
		return "FS"
	case StrategyFullIndex:
		return "FI"
	case StrategyStandardCracking:
		return "STD"
	case StrategyStochasticCracking:
		return "STC"
	case StrategyProgressiveStochastic:
		return "PSTC"
	case StrategyCoarseGranular:
		return "CGI"
	case StrategyAdaptiveAdaptive:
		return "AA"
	case StrategyProgressiveHash:
		return "PHASH"
	case StrategyImprints:
		return "PIMP"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Progressive reports whether the strategy is one of the four
// progressive algorithms (the paper's contribution).
func (s Strategy) Progressive() bool {
	switch s {
	case StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD:
		return true
	}
	return false
}

// Options configures New. The zero value builds a Progressive Quicksort
// with a fixed δ of 0.25 and default cost constants.
type Options struct {
	// Strategy selects the algorithm (default Progressive Quicksort).
	Strategy Strategy

	// Delta fixes the fraction of the data indexed per query. Used when
	// Budget is zero. Default 0.25.
	Delta float64
	// Budget is the per-query indexing time budget. When set it
	// overrides Delta: with Adaptive false it is translated into a
	// fixed δ on the first query; with Adaptive true δ is re-derived
	// every query so total query time stays at t_scan + Budget until
	// convergence.
	Budget time.Duration
	// Adaptive selects the adaptive budget flavor (see Budget).
	Adaptive bool

	// Calibrate measures the cost-model constants on this machine at
	// construction time instead of using built-in defaults. Budgets in
	// wall-clock time are only meaningful with calibration on.
	Calibrate bool

	// RadixBits sets the bucket count (1<<RadixBits) for the radix and
	// bucket sorts; BlockSize the bucket block size; Fanout the B+-tree
	// fanout; L1Elements the sort-outright threshold. Zero means the
	// paper's defaults (6, 1024, 64, 4096).
	RadixBits  int
	BlockSize  int
	Fanout     int
	L1Elements int

	// Seed drives the stochastic cracking baselines.
	Seed int64
}

// New builds an index of the selected strategy over values. The slice
// is retained as the base column and must not be mutated afterwards;
// progressive strategies copy out of it as they index, exactly like the
// paper's creation phases.
func New(values []int64, opts Options) (Index, error) {
	col, err := column.New(values)
	if err != nil {
		return nil, err
	}
	return NewFromColumn(col, opts)
}

// NewFromColumn is New for a pre-built column (shared across several
// indexes in the benchmarks, avoiding repeated min/max passes).
func NewFromColumn(col *column.Column, opts Options) (Index, error) {
	ccfg := core.Config{
		Delta:      opts.Delta,
		RadixBits:  opts.RadixBits,
		BlockSize:  opts.BlockSize,
		Fanout:     opts.Fanout,
		L1Elements: opts.L1Elements,
	}
	switch {
	case opts.Budget > 0 && opts.Adaptive:
		ccfg.Mode = core.AdaptiveTime
		ccfg.BudgetSeconds = opts.Budget.Seconds()
	case opts.Budget > 0:
		ccfg.Mode = core.FixedTime
		ccfg.BudgetSeconds = opts.Budget.Seconds()
	default:
		ccfg.Mode = core.FixedDelta
	}
	if opts.Calibrate {
		calibrateOnce.Do(func() { calibrated = core.CalibrateParams() })
		ccfg.Params = calibrated
	}
	kcfg := cracking.Config{Seed: opts.Seed}

	switch opts.Strategy {
	case StrategyQuicksort:
		return core.NewQuicksort(col, ccfg), nil
	case StrategyRadixMSD:
		return core.NewRadixMSD(col, ccfg), nil
	case StrategyBucketsort:
		return core.NewBucketsort(col, ccfg), nil
	case StrategyRadixLSD:
		return core.NewRadixLSD(col, ccfg), nil
	case StrategyFullScan:
		return baseline.NewFullScan(col), nil
	case StrategyFullIndex:
		return baseline.NewFullIndex(col, ccfg.Fanout), nil
	case StrategyStandardCracking:
		return cracking.NewStandard(col, kcfg), nil
	case StrategyStochasticCracking:
		return cracking.NewStochastic(col, kcfg), nil
	case StrategyProgressiveStochastic:
		return cracking.NewProgressiveStochastic(col, kcfg), nil
	case StrategyCoarseGranular:
		return cracking.NewCoarseGranular(col, kcfg), nil
	case StrategyAdaptiveAdaptive:
		return cracking.NewAdaptiveAdaptive(col, kcfg), nil
	case StrategyProgressiveHash:
		return phash.New(col, opts.Delta), nil
	case StrategyImprints:
		return imprints.New(col, opts.Delta), nil
	default:
		return nil, fmt.Errorf("progidx: unknown strategy %v", opts.Strategy)
	}
}

// MustNew is New that panics on error, for examples and tests with
// statically valid inputs.
func MustNew(values []int64, opts Options) Index {
	idx, err := New(values, opts)
	if err != nil {
		panic(err)
	}
	return idx
}

// Calibration is process-wide: constants measured once, reused by every
// index built with Options.Calibrate, mirroring the paper's
// measure-at-startup scheme.
var (
	calibrateOnce sync.Once
	calibrated    costmodel.Params
)
