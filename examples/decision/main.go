// Decision: the paper's Figure 11 decision tree in action. For four
// workload scenarios, ask Recommend for a strategy, run the scenario,
// and compare against the other progressive algorithms to show the
// recommendation holds.
//
// Run with:
//
//	go run ./examples/decision
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/workload"
)

type scenario struct {
	name    string
	hints   progidx.WorkloadHints
	values  []int64
	queries []workload.Query
}

func main() {
	const n = 500_000
	const queries = 250

	uniform := data.Uniform(n, 1)
	skewed := data.Skewed(n, 2)

	scenarios := []scenario{
		{
			name:    "range queries on uniform data",
			hints:   progidx.WorkloadHints{},
			values:  uniform,
			queries: workload.Random(int64(n), 3).Queries(queries),
		},
		{
			name:    "range queries on skewed data",
			hints:   progidx.WorkloadHints{SkewedData: true},
			values:  skewed,
			queries: workload.Random(int64(n), 4).Queries(queries),
		},
		{
			name:    "point lookups only",
			hints:   progidx.WorkloadHints{PointQueriesOnly: true},
			values:  uniform,
			queries: workload.PointVersion(workload.Random(int64(n), 5)).Queries(queries),
		},
		{
			name:    "memory-constrained host",
			hints:   progidx.WorkloadHints{MemoryConstrained: true},
			values:  uniform,
			queries: workload.Random(int64(n), 6).Queries(queries),
		},
	}

	all := []progidx.Strategy{
		progidx.StrategyQuicksort, progidx.StrategyBucketsort,
		progidx.StrategyRadixLSD, progidx.StrategyRadixMSD,
	}

	for _, sc := range scenarios {
		pick := progidx.Recommend(sc.hints)
		fmt.Printf("%s\n  decision tree picks: %s\n", sc.name, pick)
		for _, s := range all {
			// The paper's setup: adaptive budget of ~20% of a scan.
			// 50µs approximates that for a 500k-row column; at this
			// budget the pre-convergence behaviour dominates, which is
			// where the algorithms differ.
			idx := progidx.MustNew(sc.values, progidx.Options{
				Strategy: s, Budget: 50 * time.Microsecond, Adaptive: true, Calibrate: true,
			})
			start := time.Now()
			converged := "not converged"
			for i, q := range sc.queries {
				idx.Query(q.Lo, q.Hi)
				if converged == "not converged" && idx.Converged() {
					converged = fmt.Sprintf("converged @%d", i+1)
				}
			}
			total := time.Since(start)
			marker := "  "
			if s == pick {
				marker = "=>"
			}
			fmt.Printf("  %s %-4s cumulative %9v   %s\n", marker, s, total.Round(time.Microsecond), converged)
		}
		fmt.Println()
	}
}
