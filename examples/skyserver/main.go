// Skyserver: a head-to-head on the paper's headline workload — the
// SkyServer-like session — between a progressive index, database
// cracking, a full scan and an up-front full index. Reproduces the
// qualitative content of Table 2 at laptop scale.
//
// Run with:
//
//	go run ./examples/skyserver
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/workload"
)

func main() {
	const n = 1_000_000
	const queries = 300
	values := data.SkyServer(n, 42)
	gen := workload.SkyServer(data.SkyServerDomain, 43)

	contenders := []progidx.Options{
		{Strategy: progidx.StrategyFullScan},
		{Strategy: progidx.StrategyFullIndex},
		{Strategy: progidx.StrategyStandardCracking},
		{Strategy: progidx.StrategyAdaptiveAdaptive},
		{Strategy: progidx.StrategyQuicksort, Budget: time.Millisecond, Adaptive: true, Calibrate: true},
		{Strategy: progidx.StrategyRadixMSD, Budget: time.Millisecond, Adaptive: true, Calibrate: true},
	}

	fmt.Printf("%-6s %12s %12s %12s %12s\n", "index", "first query", "worst query", "cumulative", "converged@")
	for _, opt := range contenders {
		idx := progidx.MustNew(values, opt)
		var first, worst, total time.Duration
		converged := "never"
		for i := 0; i < queries; i++ {
			q := gen.Query(i)
			start := time.Now()
			idx.Query(q.Lo, q.Hi)
			lat := time.Since(start)
			total += lat
			if i == 0 {
				first = lat
			}
			if lat > worst {
				worst = lat
			}
			if converged == "never" && idx.Converged() {
				converged = fmt.Sprintf("%d", i+1)
			}
		}
		fmt.Printf("%-6s %12v %12v %12v %12s\n",
			idx.Name(),
			first.Round(time.Microsecond),
			worst.Round(time.Microsecond),
			total.Round(time.Microsecond),
			converged)
	}

	fmt.Println(`
Reading the table (cf. Table 2 of the paper):
  - FS never gets faster; FI pays everything on query one;
  - STD's worst query is its first (copy + first crack), and the
    drifting workload keeps hitting unrefined pieces;
  - the progressive indexes start at ~1.2x a scan, hold that cost
    steady until convergence, then drop to B+-tree speed.`)
}
