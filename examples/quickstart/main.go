// Quickstart: build a progressive index over a column of integers and
// watch it pay for itself.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

func main() {
	// A column of 2M random integers — pretend it is a freshly loaded
	// data set a data scientist wants to explore right now, with no
	// time to build an index up front.
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 2_000_000)
	for i := range values {
		values[i] = rng.Int63n(1_000_000)
	}

	// A progressive radixsort index with an adaptive budget: every
	// query is allowed to run ~20% longer than a plain scan, and that
	// overhead is invested into index construction. Calibrate measures
	// the machine's scan/copy/swap costs so the budget is honored in
	// wall-clock terms.
	idx, err := progidx.New(values, progidx.Options{
		Strategy:  progidx.StrategyRadixMSD,
		Budget:    500 * time.Microsecond,
		Adaptive:  true,
		Calibrate: true,
	})
	if err != nil {
		panic(err)
	}

	// The v2 request/response API: describe the predicate and the
	// aggregates; the answer carries the values and the per-query
	// indexing stats inline.
	fmt.Println("query   phase          latency      sum of matches")
	for q := 1; q <= 400; q++ {
		lo := rng.Int63n(900_000)
		start := time.Now()
		ans, err := idx.Execute(progidx.Request{
			Pred: progidx.Range(lo, lo+100_000),
			Aggs: progidx.Sum | progidx.Count | progidx.Avg,
		})
		lat := time.Since(start)
		if err != nil {
			panic(err)
		}
		if q <= 5 || q%50 == 0 || (idx.Converged() && q%50 == 1) {
			fmt.Printf("%5d   %-12s  %9v   %d (%d rows, mean %.1f)\n",
				q, ans.Stats.Phase, lat.Round(time.Microsecond), ans.Sum, ans.Count, ans.Avg)
		}
		if idx.Converged() && q > 100 {
			fmt.Printf("\nconverged: the index is now a B+-tree; queries cost microseconds.\n")
			break
		}
	}
}
