// Extensions: the two "Indexing Methods" ideas from the paper's
// future-work section (§6), implemented and raced against the paper's
// own best point-query technique.
//
//   - a progressive hash index (PHASH): point queries on the indexed
//     prefix become hash lookups;
//   - progressive column imprints (PIMP): a secondary index that skips
//     cachelines without ever reordering the column.
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/data"
)

func main() {
	const n = 1_000_000
	values := data.Uniform(n, 1)
	rng := rand.New(rand.NewSource(2))

	fmt.Println("Point-query workload, 500 queries, δ=0.1 per query:")
	fmt.Printf("%-6s %14s %14s %12s\n", "index", "first query", "last query", "cumulative")
	for _, s := range []progidx.Strategy{
		progidx.StrategyFullScan,
		progidx.StrategyRadixLSD, // the paper's point-query pick (Figure 11)
		progidx.StrategyProgressiveHash,
		progidx.StrategyImprints,
	} {
		idx := progidx.MustNew(values, progidx.Options{Strategy: s, Delta: 0.1})
		var first, last, total time.Duration
		queries := rand.New(rand.NewSource(3))
		for q := 0; q < 500; q++ {
			v := values[queries.Intn(n)]
			start := time.Now()
			// An explicit Point predicate: phash answers from its hash
			// table and plsd from a single radix bucket, instead of
			// degenerating to a [v, v] range scan.
			ans, err := idx.Execute(progidx.Request{Pred: progidx.Point(v)})
			d := time.Since(start)
			if err != nil {
				panic(err)
			}
			if ans.Count < 1 {
				panic("lost a value")
			}
			total += d
			if q == 0 {
				first = d
			}
			last = d
		}
		fmt.Printf("%-6s %14v %14v %12v\n", idx.Name(),
			first.Round(time.Microsecond), last.Round(time.Microsecond), total.Round(time.Microsecond))
	}

	fmt.Println("\nImprints pruning on clustered data (secondary index, column untouched):")
	sky := data.SkyServer(n, 4)
	imp := progidx.MustNew(sky, progidx.Options{Strategy: progidx.StrategyImprints, Delta: 1})
	imp.Query(0, 1)                    // build all imprints in one go
	imp.Query(0, data.SkyServerDomain) // warm the column and marks
	for _, width := range []int64{1e6, 10e6, 100e6} {
		lo := int64(180e6)
		start := time.Now()
		res := imp.Query(lo, lo+width)
		d := time.Since(start)
		fmt.Printf("  range %3.0f°–%3.0f°: %8d rows in %8v\n",
			float64(lo)/1e6, float64(lo+width)/1e6, res.Count, d.Round(time.Microsecond))
	}
	_ = rng
}
