// Exploration: the interactive data analysis scenario from the paper's
// introduction. A data scientist zooms into a region of interest,
// issuing a query every time they adjust the view. The paper's
// interactivity threshold (Liu & Heer: 500 ms) must never be violated,
// which rules out building a full index up front — so the progressive
// index builds itself under an adaptive budget while the session runs.
//
// Run with:
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/workload"
)

func main() {
	const n = 2_000_000
	values := data.SkyServer(n, 7)

	idx, err := progidx.New(values, progidx.Options{
		Strategy:  progidx.Recommend(progidx.WorkloadHints{}), // Figure 11 decision tree
		Budget:    time.Millisecond,
		Adaptive:  true,
		Calibrate: true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("strategy picked by the decision tree: %s\n\n", idx.Name())

	// The session: zoom into the densest sky region, then pan around.
	zoom := workload.ZoomIn(data.SkyServerDomain, 60)
	pan := workload.SkyServer(data.SkyServerDomain, 99)

	var worst, total time.Duration
	queries := 0
	session := func(name string, gen workload.Generator, count int) {
		fmt.Printf("-- %s --\n", name)
		for i := 0; i < count; i++ {
			q := gen.Query(i)
			start := time.Now()
			res := idx.Query(q.Lo, q.Hi)
			lat := time.Since(start)
			total += lat
			queries++
			if lat > worst {
				worst = lat
			}
			if i%15 == 0 {
				deg := func(v int64) float64 { return float64(v) / 1e6 }
				fmt.Printf("  RA in [%7.2f°, %7.2f°): %9d objects   %8v\n",
					deg(q.Lo), deg(q.Hi), res.Count, lat.Round(time.Microsecond))
			}
		}
	}

	session("zooming into the galactic band", zoom, 60)
	session("panning across focus areas", pan, 120)

	fmt.Printf("\n%d queries, mean %v, worst %v — interactivity threshold (500ms) %s\n",
		queries,
		(total / time.Duration(queries)).Round(time.Microsecond),
		worst.Round(time.Microsecond),
		verdict(worst))
	if idx.Converged() {
		fmt.Println("and the index fully converged as a by-product of the session.")
	}
}

func verdict(worst time.Duration) string {
	if worst < 500*time.Millisecond {
		return "never violated"
	}
	return "VIOLATED"
}
