package progidx

import (
	"sync"
	"testing"
)

// TestSynchronizedParallelKernelsRace exercises Synchronized.Execute
// from many goroutines while the inner index runs the multi-worker
// scan and creation kernels, so `go test -race` patrols the boundary
// between the coarse outer lock and the pool's internal fan-out. The
// column is sized so that creation segments and tail scans exceed the
// parallel chunk cutoffs — with 200k rows and δ=0.25 the first
// queries run both parallel code paths.
func TestSynchronizedParallelKernelsRace(t *testing.T) {
	const (
		n          = 200_000
		goroutines = 8
		perG       = 12
	)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 2654435761) % n)
	}
	for _, strategy := range []Strategy{
		StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD, StrategyFullScan,
	} {
		idx := Synchronize(MustNew(vals, Options{Strategy: strategy, Delta: 0.25, Workers: 4}))
		want := idx.Query(0, n-1) // serialized reference answer

		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					// Mix full-range queries (checkable against the
					// reference) with narrow ones (drive refinement).
					if i%3 == 0 {
						ans, err := idx.Execute(Request{Pred: Range(0, n-1)})
						if err != nil {
							t.Errorf("%v: %v", strategy, err)
							return
						}
						if ans.Sum != want.Sum || ans.Count != want.Count {
							t.Errorf("%v: concurrent full-range answer %d/%d, want %d/%d",
								strategy, ans.Sum, ans.Count, want.Sum, want.Count)
							return
						}
						if ans.Stats.Workers != 4 {
							t.Errorf("%v: Stats.Workers = %d, want 4", strategy, ans.Stats.Workers)
							return
						}
					} else {
						lo := int64((g*perG + i) * 1000 % n)
						if _, err := idx.Execute(Request{Pred: Range(lo, lo+5000), Aggs: AllAggregates}); err != nil {
							t.Errorf("%v: %v", strategy, err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
}
