package progidx

import (
	"testing"

	"repro/internal/data"
	"repro/internal/obs"
)

// findSpans walks a span tree depth-first collecting every span with
// the given name.
func findSpans(n *obs.SpanJSON, name string) []*obs.SpanJSON {
	var out []*obs.SpanJSON
	if n == nil {
		return nil
	}
	if n.Name == name {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

// TestShardedTraceAgreesWithStats drives a traced batch through a
// sharded handle and checks the span tree against the answer's own
// shard accounting: every shard appears exactly once under the
// fan-out span, pruned shards carry zero-work spans, and the
// scanned/pruned split matches Stats.ShardsScanned/ShardsPruned.
func TestShardedTraceAgreesWithStats(t *testing.T) {
	const shards = 8
	// Sorted values give the positional partition disjoint zone maps,
	// so a narrow range demonstrably prunes the non-overlapping shards.
	vals := make([]int64, 16_384)
	for i := range vals {
		vals[i] = int64(i)
	}
	h, err := NewSharded(vals, Options{Shards: shards, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	req := Request{Pred: Range(0, 500)}
	tr := obs.NewTrace("query", "t")
	answers, errs := h.ExecuteBatchTraced([]Request{req}, []*obs.Trace{tr})
	tr.Finish()
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	ans := answers[0]
	if ans.Stats.ShardsScanned+ans.Stats.ShardsPruned != shards {
		t.Fatalf("stats cover %d shards, want %d", ans.Stats.ShardsScanned+ans.Stats.ShardsPruned, shards)
	}
	if ans.Stats.ShardsPruned == 0 {
		t.Fatalf("narrow range pruned no shards: %+v", ans.Stats)
	}

	tree := tr.Tree()
	fanouts := findSpans(tree.Root, "shard_fanout")
	if len(fanouts) != 1 {
		t.Fatalf("got %d shard_fanout spans, want 1", len(fanouts))
	}
	fo := fanouts[0]
	if got := fo.Attrs["scanned"]; got != int64(ans.Stats.ShardsScanned) {
		t.Errorf("fanout scanned attr = %v, want %d", got, ans.Stats.ShardsScanned)
	}
	if got := fo.Attrs["pruned"]; got != int64(ans.Stats.ShardsPruned) {
		t.Errorf("fanout pruned attr = %v, want %d", got, ans.Stats.ShardsPruned)
	}

	shardSpans := findSpans(fo, "shard")
	if len(shardSpans) != shards {
		t.Fatalf("got %d shard spans, want %d (every shard accounted for)", len(shardSpans), shards)
	}
	seen := make(map[int64]bool)
	var pruned, scanned int
	for _, sp := range shardSpans {
		id, ok := sp.Attrs["shard"].(int64)
		if !ok || seen[id] {
			t.Fatalf("shard span has bad/duplicate id attr %v", sp.Attrs["shard"])
		}
		seen[id] = true
		if p, _ := sp.Attrs["pruned"].(bool); p {
			pruned++
			// The observable guarantee behind zone-map pruning: a pruned
			// shard performs zero work and its span shows it.
			if rows, _ := sp.Attrs["rows_scanned"].(int64); rows != 0 {
				t.Errorf("pruned shard %d scanned %d rows, want 0", id, rows)
			}
			if sp.DurMicros != 0 {
				t.Errorf("pruned shard %d has non-zero duration %dus", id, sp.DurMicros)
			}
		} else {
			scanned++
		}
		// Span-tree invariant: children fit inside the parent's window.
		if sp.StartMicros < fo.StartMicros ||
			sp.StartMicros+sp.DurMicros > fo.StartMicros+fo.DurMicros {
			t.Errorf("shard span %d [%d, %d] escapes fanout window [%d, %d]",
				id, sp.StartMicros, sp.StartMicros+sp.DurMicros,
				fo.StartMicros, fo.StartMicros+fo.DurMicros)
		}
	}
	if pruned != ans.Stats.ShardsPruned || scanned != ans.Stats.ShardsScanned {
		t.Errorf("trace shows %d scanned / %d pruned, stats say %d / %d",
			scanned, pruned, ans.Stats.ShardsScanned, ans.Stats.ShardsPruned)
	}

	// The merged answer must be identical to an untraced execution.
	h2, err := NewSharded(vals, Options{Shards: shards, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := h2.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Sum != want.Sum || ans.Count != want.Count {
		t.Errorf("traced answer (sum=%d count=%d) differs from untraced (sum=%d count=%d)",
			ans.Sum, ans.Count, want.Sum, want.Count)
	}
}

// TestSynchronizedTraceSpans checks the unsharded handle's traced
// batch: each request gets an index span, and follower requests in
// the batch are marked suspended.
func TestSynchronizedTraceSpans(t *testing.T) {
	vals := data.Uniform(8_192, 3)
	h, err := NewHandle(vals, Options{Delta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Pred: Range(10, 1000)}, {Pred: Range(2000, 3000)}}
	traces := []*obs.Trace{obs.NewTrace("query", "t"), obs.NewTrace("query", "t")}
	bt, ok := h.(BatchTracer)
	if !ok {
		t.Fatal("handle does not implement BatchTracer")
	}
	_, errs := bt.ExecuteBatchTraced(reqs, traces)
	for i, tr := range traces {
		tr.Finish()
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		spans := findSpans(tr.Tree().Root, "index")
		if len(spans) != 1 {
			t.Fatalf("trace %d: got %d index spans, want 1", i, len(spans))
		}
		if _, ok := spans[0].Attrs["phase"].(string); !ok {
			t.Errorf("trace %d: index span missing phase attr", i)
		}
		suspended, _ := spans[0].Attrs["suspended"].(bool)
		if i == 0 && suspended {
			t.Error("batch leader marked suspended")
		}
		if i > 0 && !suspended {
			t.Error("batch follower not marked suspended")
		}
	}
}
