//go:build !race

package progidx

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
