package progidx

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/column"
	"repro/internal/data"
)

func TestSynchronizedConcurrentQueriesExact(t *testing.T) {
	vals := data.Uniform(20_000, 1)
	for _, s := range []Strategy{StrategyRadixMSD, StrategyStandardCracking} {
		idx := Synchronize(MustNew(vals, Options{Strategy: s, Delta: 0.2}))
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for q := 0; q < 100; q++ {
					lo := rng.Int63n(20_000)
					hi := lo + rng.Int63n(4_000)
					got := idx.Query(lo, hi)
					want := column.SumRangeBranching(vals, lo, hi)
					if got != want {
						select {
						case errs <- idx.Name():
						default:
						}
						return
					}
				}
			}(int64(g))
		}
		wg.Wait()
		close(errs)
		if name, bad := <-errs; bad {
			t.Fatalf("%s returned a wrong answer under concurrency", name)
		}
	}
}

func TestSynchronizedStats(t *testing.T) {
	vals := data.Uniform(5000, 2)
	prog := Synchronize(MustNew(vals, Options{Strategy: StrategyQuicksort, Delta: 0.5}))
	prog.Query(0, 100)
	if st, ok := prog.Stats(); !ok || st.Phase != PhaseCreation {
		t.Fatalf("Stats() = %+v, %v", st, ok)
	}
	base := Synchronize(MustNew(vals, Options{Strategy: StrategyFullScan}))
	base.Query(0, 100)
	if _, ok := base.Stats(); ok {
		t.Fatal("FullScan should not report progressive stats")
	}
	if base.Name() != "FS" || base.Converged() {
		t.Fatal("wrapper must delegate Name/Converged")
	}
}
