// Round-trip of an encoded table through the durability subsystem.
// This lives in the external test package: it drives the catalog and
// durable store, which themselves import the root package.
package progidx_test

import (
	"math/rand"
	"testing"

	progidx "repro"
	"repro/internal/catalog"
	"repro/internal/column"
	"repro/internal/durable"
)

// TestEncodedSnapshotRecoverRoundTrip checkpoints a FOR-BP table —
// whose snapshot payload is a marshaled segment, not raw rows — appends
// a WAL tail past the checkpoint, reopens the store cold, and requires
// the recovered table to answer bit-identically to the branching oracle
// over the full pre-crash contents. It also pins the metadata
// round-trip: the recovered options must still say forbp, or the table
// would silently re-materialize raw on restart.
func TestEncodedSnapshotRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	c := catalog.NewDurable(store)

	rng := rand.New(rand.NewSource(77))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(50_000) - 25_000
	}
	tbl, err := c.Load("enc", vals, catalog.Options{
		Strategy: progidx.StrategyQuicksort, Delta: 0.5, Shards: 3,
		Encoding: progidx.EncodingFORBP,
	})
	if err != nil {
		t.Fatal(err)
	}
	expect := append([]int64(nil), vals...)
	appendBatch := func(base int64) {
		b := make([]int64, 64)
		for i := range b {
			b[i] = base + int64(i)
		}
		if err := tbl.Append(b); err != nil {
			t.Fatal(err)
		}
		expect = append(expect, b...)
	}
	appendBatch(100_000) // covered by the checkpoint below
	cp, ok := tbl.CaptureCheckpoint()
	if !ok {
		t.Fatal("CaptureCheckpoint on a durable table returned ok=false")
	}
	if err := tbl.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	appendBatch(200_000) // WAL tail, replayed on recovery
	if err := tbl.SyncLog(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, err := durable.Open(dir, durable.SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	recs, warns, err := store2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) > 0 || len(recs) != 1 {
		t.Fatalf("recovered %d tables, warnings %v", len(recs), warns)
	}
	if recs[0].Meta.Encoding != "forbp" {
		t.Fatalf("recovered meta encoding %q, want %q", recs[0].Meta.Encoding, "forbp")
	}
	tbl2, err := catalog.NewDurable(store2).LoadRecovered(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Len(); got != len(expect) {
		t.Fatalf("recovered %d rows, want %d", got, len(expect))
	}
	for _, q := range []struct{ lo, hi int64 }{
		{-25_000, 25_000},
		{0, 10_000},
		{100_000, 100_063},
		{200_000, 200_063},
		{-1 << 40, 1 << 40},
	} {
		ans, err := tbl2.Index().Execute(progidx.Request{
			Pred: progidx.Range(q.lo, q.hi), Aggs: progidx.AllAggregates,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := column.AggRangeBranching(expect, q.lo, q.hi)
		if ans.Sum != want.Sum || ans.Count != want.Count {
			t.Fatalf("range [%d,%d]: sum/count %d/%d, want %d/%d", q.lo, q.hi, ans.Sum, ans.Count, want.Sum, want.Count)
		}
		if want.Count > 0 && (ans.Min != want.Min || ans.Max != want.Max) {
			t.Fatalf("range [%d,%d]: min/max %d/%d, want %d/%d", q.lo, q.hi, ans.Min, ans.Max, want.Min, want.Max)
		}
	}
}
