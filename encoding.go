package progidx

import (
	"fmt"

	"repro/internal/column"
	"repro/internal/encode"
	"repro/internal/parallel"
	"repro/internal/query"
)

// Encoding selects the table's storage mode (DESIGN.md section 12).
// Compressed tables store their rows as encode.Segments — frame-of-
// reference bit-packed, dictionary-coded, or raw, selected per segment
// — and answer range aggregates by scanning the packed words directly;
// the rows are decompressed only when a progressive index build claims
// them. The zero value is EncodingRaw: compression is opt-in per table
// and the default behavior is byte-identical to previous releases.
type Encoding = encode.Mode

// Storage modes. EncodingAuto picks raw, FOR-BP or dictionary per
// segment from the segment's own statistics; the explicit modes force
// one representation (a forced dictionary falls back to FOR-BP when
// the cardinality probe overflows, so it is always safe).
const (
	EncodingRaw   = encode.ModeRaw
	EncodingAuto  = encode.ModeAuto
	EncodingFORBP = encode.ModeFORBP
	EncodingDict  = encode.ModeDict
)

// ParseEncoding resolves an encoding from its wire spelling ("raw",
// "auto", "forbp", "dict"); the empty string is EncodingRaw.
func ParseEncoding(name string) (Encoding, error) {
	return encode.ParseMode(name)
}

// Materializer is implemented by handles that can reproduce the raw
// rows of their logical table in row order. Compressed tables keep no
// base column — the segments are the data — so snapshot capture and
// oracle checks extract rows through this instead of a column
// reference. The copy is fresh on every call; callers own it.
type Materializer interface {
	MaterializeRows() []int64
}

// encodedIndex is the unsharded compressed index: one immutable
// segment over the whole column, scanned in place by every query. It
// is converged from birth — there is no progressive build to run and
// no per-query budget to spend — which makes it the compressed
// analogue of the Full Scan reference point, at a fraction of the
// resident bytes. Claim-on-heat decompression is a shard-layer
// behavior; an unsharded encoded table stays compressed for life (use
// Options.Shards to get claiming).
type encodedIndex struct {
	seg  *encode.Segment
	pool *parallel.Pool
	name string
}

func newEncodedIndex(col *column.Column, mode Encoding, workers int) (*encodedIndex, error) {
	seg, err := encode.FromColumn(col, mode)
	if err != nil {
		return nil, fmt.Errorf("progidx: encoding column: %w", err)
	}
	return &encodedIndex{
		seg:  seg,
		pool: parallel.New(workers),
		name: "ENC/" + seg.Kind().String(),
	}, nil
}

// Name reports "ENC/" plus the concrete representation the selector
// chose, e.g. "ENC/forbp".
func (e *encodedIndex) Name() string { return e.name }

// Execute answers the request exactly by scanning the packed segment,
// bit-identical to the raw kernels at every worker count.
func (e *encodedIndex) Execute(req Request) (Answer, error) {
	lo, hi, aggs, err := query.Prepare(req, e.seg.Min(), e.seg.Max())
	if err != nil {
		return Answer{}, err
	}
	agg := e.seg.ParAggRange(e.pool, lo, hi, aggs)
	return query.NewAnswer(agg, aggs, query.Stats{
		Workers: e.pool.Workers(),
		Phase:   query.PhaseDone,
	}), nil
}

// Query is the v1 surface over the same scan.
func (e *encodedIndex) Query(lo, hi int64) Result {
	ans, _ := e.Execute(Request{Pred: Range(lo, hi)})
	return Result{Sum: ans.Sum, Count: ans.Count}
}

// Converged is true from birth: cold storage is the terminal state.
func (e *encodedIndex) Converged() bool { return true }

// Progress implements Progressor (always fully converged).
func (e *encodedIndex) Progress() float64 { return 1 }

// Phase implements the lifecycle probe: a cold segment has no build
// left to run.
func (e *encodedIndex) Phase() Phase { return PhaseDone }

// ValueBounds implements ValueBounded with the segment's zone.
func (e *encodedIndex) ValueBounds() (int64, int64) {
	return e.seg.Min(), e.seg.Max()
}

// MaterializeRows implements Materializer by decoding the segment.
func (e *encodedIndex) MaterializeRows() []int64 { return e.seg.Decode() }

var (
	_ Index        = (*encodedIndex)(nil)
	_ ValueBounded = (*encodedIndex)(nil)
	_ Progressor   = (*encodedIndex)(nil)
	_ Materializer = (*encodedIndex)(nil)
	_ Materializer = (*Sharded)(nil)
	_ ValueBounded = (*Sharded)(nil)
)
