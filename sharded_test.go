package progidx

import (
	"math/rand"
	"sync"
	"testing"
)

// boundedColumn is testColumn without the ±2^62 extreme sentinels, for
// tests that need predicates genuinely outside the column domain.
func boundedColumn(n int, seed int64) []int64 {
	vals := testColumn(n, seed)
	vals[0], vals[1] = 1234, -1234
	return vals
}

// shardCountPool is the acceptance-criteria sweep: degenerate (1),
// small (2, 3 — odd, so row ranges divide unevenly) and the paper-ish
// per-core count (8).
var shardCountPool = []int{1, 2, 3, 8}

// TestShardedMatchesOracleAllStrategies is the sharded acceptance
// property test: every strategy × predicate kind × aggregate mask ×
// shard count, bit-identical to the unsharded branching oracle while
// the per-shard indexes advance through their lifecycles.
func TestShardedMatchesOracleAllStrategies(t *testing.T) {
	vals := testColumn(4000, 23)
	for _, s := range allStrategies {
		for _, shards := range shardCountPool {
			idx, err := NewSharded(vals, Options{Strategy: s, Delta: 0.3, Seed: 7, Shards: shards})
			if err != nil {
				t.Fatalf("%v shards=%d: %v", s, shards, err)
			}
			rng := rand.New(rand.NewSource(int64(s)*31 + int64(shards)))
			for round := 0; round < 6; round++ {
				for pi, p := range predicatePool(rng, vals) {
					aggs := aggMaskPool[(round+pi)%len(aggMaskPool)]
					ans, err := idx.Execute(Request{Pred: p, Aggs: aggs})
					if err != nil {
						t.Fatalf("%v shards=%d Execute(%v, %v): %v", s, shards, p, aggs, err)
					}
					checkAnswer(t, idx.Name(), p, aggs, ans, oracleAnswer(vals, p))
				}
			}
		}
	}
}

// TestShardedWorkerInvariance pins the whole-query parallelism
// contract: the cross-shard fan-out merges partial aggregates in shard
// order, so every worker count produces the identical Answer sequence.
func TestShardedWorkerInvariance(t *testing.T) {
	vals := testColumn(6000, 24)
	type qr struct {
		p Predicate
		a Aggregates
	}
	rng := rand.New(rand.NewSource(3))
	queries := make([]qr, 60)
	for i := range queries {
		lo := rng.Int63n(8000) - 4000
		queries[i] = qr{Range(lo, lo+rng.Int63n(3000)), aggMaskPool[i%len(aggMaskPool)]}
	}
	var want []Answer
	for wi, workers := range []int{1, 2, 3, 7} {
		idx, err := NewSharded(vals, Options{Strategy: StrategyQuicksort, Delta: 0.4, Shards: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]Answer, len(queries))
		for i, q := range queries {
			ans, err := idx.Execute(Request{Pred: q.p, Aggs: q.a})
			if err != nil {
				t.Fatal(err)
			}
			// Wall-clock stats legitimately vary with the fan-out; the
			// answer fields and work accounting must not.
			ans.Stats.Workers = 0
			got[i] = ans
		}
		if wi == 0 {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d: %+v != serial %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestShardedZonePruning verifies the pruning guarantee on clustered
// data: shards whose zone map misses every predicate execute exactly
// zero times — no scan work, no indexing work — while the hot shards
// absorb the heat and the budget.
func TestShardedZonePruning(t *testing.T) {
	// Clustered column: sorted values, so row-range shards have
	// disjoint zone maps.
	n := 8000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	sh, err := NewSharded(vals, Options{Strategy: StrategyQuicksort, Delta: 0.25, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the first quarter of the value domain only.
	for q := 0; q < 40; q++ {
		lo := int64(q * 37 % 1500)
		ans, err := sh.Execute(Request{Pred: Range(lo, lo+400)})
		if err != nil {
			t.Fatal(err)
		}
		want := oracleAnswer(vals, Range(lo, lo+400))
		if ans.Sum != want.Sum || ans.Count != want.Count {
			t.Fatalf("query %d: got {%d %d}, want {%d %d}", q, ans.Sum, ans.Count, want.Sum, want.Count)
		}
	}
	stats := sh.ShardStats()
	if len(stats) != 8 {
		t.Fatalf("ShardStats returned %d shards, want 8", len(stats))
	}
	for i, st := range stats {
		touched := st.MinValue <= 1900 // queries cover values [0, 1900]
		if touched && st.Executes == 0 {
			t.Errorf("shard %d [%d, %d] overlaps the workload but never executed", i, st.MinValue, st.MaxValue)
		}
		if !touched {
			if st.Executes != 0 {
				t.Errorf("shard %d [%d, %d] is outside the workload but executed %d times (pruning failed)",
					i, st.MinValue, st.MaxValue, st.Executes)
			}
			if st.Heat != 0 {
				t.Errorf("shard %d accumulated heat %d without surviving any query", i, st.Heat)
			}
			if st.Progress != 0 {
				t.Errorf("shard %d made indexing progress %.2f without ever executing", i, st.Progress)
			}
		}
	}
}

// TestShardedHeatDrivenConvergence verifies the budget split: under a
// workload that always hits one shard and only sometimes another, the
// hot shard must converge first.
func TestShardedHeatDrivenConvergence(t *testing.T) {
	n := 8000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	sh, err := NewSharded(vals, Options{Strategy: StrategyQuicksort, Delta: 0.05, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 holds [0, 2000); shard 3 holds [6000, 8000). Hit shard 0
	// every query, shard 3 every fourth query.
	hotDone, coldDone := -1, -1
	for q := 0; q < 400 && (hotDone < 0 || coldDone < 0); q++ {
		if _, err := sh.Execute(Request{Pred: Range(100, 200)}); err != nil {
			t.Fatal(err)
		}
		if q%4 == 0 {
			if _, err := sh.Execute(Request{Pred: Range(6100, 6200)}); err != nil {
				t.Fatal(err)
			}
		}
		stats := sh.ShardStats()
		if hotDone < 0 && stats[0].Converged {
			hotDone = q
		}
		if coldDone < 0 && stats[3].Converged {
			coldDone = q
		}
	}
	if hotDone < 0 {
		t.Fatal("hot shard never converged")
	}
	if coldDone >= 0 && coldDone < hotDone {
		t.Fatalf("cold shard converged at query %d, before the hot shard at %d", coldDone, hotDone)
	}
	stats := sh.ShardStats()
	if stats[0].Heat <= stats[3].Heat {
		t.Fatalf("hot shard heat %d not above cold shard heat %d", stats[0].Heat, stats[3].Heat)
	}
	// The untouched middle shards must have done nothing.
	for _, i := range []int{1, 2} {
		if stats[i].Executes != 0 {
			t.Errorf("untouched shard %d executed %d times", i, stats[i].Executes)
		}
	}
}

// TestShardedExecuteBatch checks the scheduler surface: a batch's
// answers positionally match the oracle, and the batch pays its
// indexing budget once (progress advances, but the suspended tail does
// not multiply it).
func TestShardedExecuteBatch(t *testing.T) {
	vals := testColumn(4000, 25)
	sh, err := NewSharded(vals, Options{Strategy: StrategyRadixMSD, Delta: 0.2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 8; round++ {
		reqs := make([]Request, 5)
		preds := make([]Predicate, 5)
		for i := range reqs {
			lo := rng.Int63n(8000) - 4000
			preds[i] = Range(lo, lo+rng.Int63n(2000))
			reqs[i] = Request{Pred: preds[i], Aggs: AllAggregates}
		}
		answers, errs := sh.ExecuteBatch(reqs)
		for i := range reqs {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			checkAnswer(t, "batch", preds[i], AllAggregates, answers[i], oracleAnswer(vals, preds[i]))
		}
	}
}

// TestShardedRefineStepConverges drives idle refinement only (no client
// queries) and checks every convergent strategy reaches the terminal
// state with monotone progress, exactly like Synchronized.RefineStep.
func TestShardedRefineStepConverges(t *testing.T) {
	vals := testColumn(3000, 26)
	for _, s := range []Strategy{StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD, StrategyProgressiveHash, StrategyImprints} {
		sh, err := NewSharded(vals, Options{Strategy: s, Delta: 0.2, Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		prev := sh.Progress()
		done := false
		for step := 0; step < 2000 && !done; step++ {
			_, done = sh.RefineStep()
			if p := sh.Progress(); p < prev {
				t.Fatalf("%v: progress regressed %v -> %v", s, prev, p)
			} else {
				prev = p
			}
		}
		if !done || !sh.Converged() {
			t.Fatalf("%v sharded never converged under RefineStep (progress %.2f)", s, sh.Progress())
		}
		if p := sh.Progress(); p != 1 {
			t.Fatalf("%v converged but Progress() = %v", s, p)
		}
		// Idle refinement must have visited every shard: with no
		// queries all heats are zero, so round-robin covers the ring.
		for i, st := range sh.ShardStats() {
			if st.Refines == 0 {
				t.Errorf("%v: shard %d never received an idle slice", s, i)
			}
		}
		// Answers stay exact after idle-only convergence.
		p := Range(-2000, 2000)
		ans, err := sh.Execute(Request{Pred: p, Aggs: AllAggregates})
		if err != nil {
			t.Fatal(err)
		}
		checkAnswer(t, sh.Name()+"/refined", p, AllAggregates, ans, oracleAnswer(vals, p))
	}
}

// TestShardedConcurrentReads hammers one sharded index from many
// goroutines through the whole lifecycle (the -race acceptance
// criterion): every answer must be exact, concurrently with idle
// refinement driving the shards to convergence.
func TestShardedConcurrentReads(t *testing.T) {
	vals := testColumn(20000, 27)
	sh, err := NewSharded(vals, Options{Strategy: StrategyRadixMSD, Delta: 0.3, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 50; q++ {
				lo := rng.Int63n(8000) - 4000
				p := Range(lo, lo+rng.Int63n(2000))
				ans, err := sh.Execute(Request{Pred: p, Aggs: AllAggregates})
				want := oracleAnswer(vals, p)
				if err != nil || ans.Count != want.Count || ans.Sum != want.Sum ||
					(want.Count > 0 && (ans.Min != want.Min || ans.Max != want.Max)) {
					select {
					case errs <- p.String():
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	// A refiner goroutine runs concurrently, like the serving layer's
	// idle loop racing client queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, done := sh.RefineStep(); done {
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	if p, bad := <-errs; bad {
		t.Fatalf("concurrent sharded read returned a wrong answer for %s", p)
	}
	// Drive to convergence and re-verify the shared read path.
	for i := 0; i < 5000 && !sh.Converged(); i++ {
		sh.RefineStep()
	}
	if !sh.Converged() {
		t.Fatal("sharded index did not converge")
	}
	var wg2 sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg2.Add(1)
		go func(seed int64) {
			defer wg2.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 50; q++ {
				lo := rng.Int63n(8000) - 4000
				p := Range(lo, lo+rng.Int63n(2000))
				ans, err := sh.Execute(Request{Pred: p})
				want := oracleAnswer(vals, p)
				if err != nil || ans.Count != want.Count || ans.Sum != want.Sum {
					select {
					case errs <- p.String():
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	wg2.Wait()
}

// TestShardedHandleSurface pins the scheduler-facing odds and ends:
// TryExecute answers exactly, Phase reports the furthest-behind shard,
// New dispatches on Options.Shards, and malformed requests error.
func TestShardedHandleSurface(t *testing.T) {
	vals := testColumn(3000, 28)
	idx := MustNew(vals, Options{Strategy: StrategyQuicksort, Shards: 4})
	sh, ok := idx.(*Sharded)
	if !ok {
		t.Fatalf("New with Shards=4 returned %T, want *Sharded", idx)
	}
	if sh.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sh.Shards())
	}
	if ph, ok := sh.Phase(); !ok || ph != PhaseCreation {
		t.Fatalf("fresh sharded Phase() = %v, %v; want creation, true", ph, ok)
	}
	p := Range(-500, 500)
	ans, ok, err := sh.TryExecute(Request{Pred: p, Aggs: AllAggregates})
	if err != nil || !ok {
		t.Fatalf("TryExecute: ok=%v err=%v", ok, err)
	}
	checkAnswer(t, "try", p, AllAggregates, ans, oracleAnswer(vals, p))
	if _, err := sh.Execute(Request{Pred: Predicate{Kind: 99}}); err == nil {
		t.Fatal("sharded Execute accepted an unknown predicate kind")
	}
	if _, err := sh.Execute(Request{Pred: p, Aggs: Aggregates(0x80)}); err == nil {
		t.Fatal("sharded Execute accepted unknown aggregate bits")
	}
	// The v1 surface routes through the same path.
	if got, want := sh.Query(-500, 500), oracleAnswer(vals, p); got.Sum != want.Sum || got.Count != want.Count {
		t.Fatalf("Query = %+v, want {%d %d}", got, want.Sum, want.Count)
	}
}

// TestSynchronizedZoneMissFastPath pins the satellite: a predicate
// disjoint from the column domain answers empty with zero work stats —
// and, on a contended index, without waiting for the write lock (here
// we just verify the answer shape and that no indexing step ran).
func TestSynchronizedZoneMissFastPath(t *testing.T) {
	vals := boundedColumn(3000, 29) // domain ⊂ [-4000, 4000): 7M really is a zone miss
	idx := Synchronize(MustNew(vals, Options{Strategy: StrategyQuicksort, Delta: 0.25}))
	before := idx.Progress()
	for i := 0; i < 10; i++ {
		ans, err := idx.Execute(Request{Pred: Range(7_000_000, 8_000_000), Aggs: AllAggregates})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Count != 0 || ans.Sum != 0 || ans.Stats.WorkSeconds != 0 || ans.Stats.Delta != 0 {
			t.Fatalf("zone-miss answer not empty/workless: %+v", ans)
		}
	}
	if after := idx.Progress(); after != before {
		t.Fatalf("zone-miss queries advanced the index: progress %v -> %v", before, after)
	}
	// Inverted ranges cannot match either, so they ride the same fast
	// path (RefineStep is unaffected: it drives the inner index
	// directly, bypassing the wrapper's short-circuit).
	if ans, err := idx.Execute(Request{Pred: Range(100, -100)}); err != nil || ans.Count != 0 || ans.Stats.WorkSeconds != 0 {
		t.Fatalf("inverted-range fast path: err=%v ans=%+v", err, ans)
	}
	if after := idx.Progress(); after != before {
		t.Fatalf("empty predicates advanced the index: progress %v -> %v", before, after)
	}
	// A matching query still pays its indexing budget as before.
	if _, err := idx.Execute(Request{Pred: Range(-1000, 1000)}); err != nil {
		t.Fatal(err)
	}
	if after := idx.Progress(); after <= before {
		t.Fatalf("matching query did not advance the index (progress %v)", after)
	}
	// Malformed requests still error on the fast path.
	if _, err := idx.Execute(Request{Pred: Predicate{Kind: 99, Lo: 7_000_000, Hi: 8_000_000}}); err == nil {
		t.Fatal("zone-miss fast path swallowed a malformed request")
	}
}
