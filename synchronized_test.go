package progidx

import (
	"sync"
	"testing"

	"repro/internal/column"
	"repro/internal/data"
)

// converge drives a synchronized index to its terminal state via
// refine steps, with a safety bound.
func converge(t *testing.T, idx *Synchronized) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if _, done := idx.RefineStep(); done {
			return
		}
	}
	t.Fatalf("%s: did not converge within bound", idx.Name())
}

func TestExecuteBatchAmortizesIndexingWork(t *testing.T) {
	vals := data.Uniform(40_000, 3)
	idx := Synchronize(MustNew(vals, Options{Strategy: StrategyQuicksort, Delta: 0.25}))

	reqs := make([]Request, 6)
	for i := range reqs {
		lo := int64(i * 3000)
		reqs[i] = Request{Pred: Range(lo, lo+8000), Aggs: AllAggregates}
	}
	answers, errs := idx.ExecuteBatch(reqs)
	if len(answers) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("batch shape: %d answers, %d errs", len(answers), len(errs))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}

	// Exactness: every batched answer equals the serial oracle.
	for i, req := range reqs {
		lo, hi := req.Pred.Lo, req.Pred.Hi
		want := column.AggRangeBranching(vals, lo, hi)
		if answers[i].Sum != want.Sum || answers[i].Count != want.Count {
			t.Fatalf("req %d: batched answer %d/%d, want %d/%d",
				i, answers[i].Sum, answers[i].Count, want.Sum, want.Count)
		}
	}

	// Amortization: the first request paid the full δ=0.25 step; the
	// suspended remainder did at most one element of creation work each
	// (δ = 1/n), two orders of magnitude less.
	if d := answers[0].Stats.Delta; d < 0.2 {
		t.Fatalf("first request's delta = %v, want ~0.25", d)
	}
	for i := 1; i < len(answers); i++ {
		if d := answers[i].Stats.Delta; d > answers[0].Stats.Delta/100 {
			t.Fatalf("suspended request %d still did delta %v of work", i, d)
		}
	}
}

func TestExecuteBatchNonSuspendableStillExact(t *testing.T) {
	vals := data.Uniform(20_000, 4)
	idx := Synchronize(MustNew(vals, Options{Strategy: StrategyStandardCracking}))
	reqs := []Request{
		{Pred: Range(100, 9_000)},
		{Pred: Range(5_000, 15_000)},
		{Pred: Point(vals[7])},
	}
	answers, errs := idx.ExecuteBatch(reqs)
	for i, req := range reqs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want := column.AggRangeBranching(vals, req.Pred.Lo, req.Pred.Hi)
		if answers[i].Sum != want.Sum || answers[i].Count != want.Count {
			t.Fatalf("req %d: %d/%d want %d/%d", i, answers[i].Sum, answers[i].Count, want.Sum, want.Count)
		}
	}
}

func TestExecuteBatchEmpty(t *testing.T) {
	idx := Synchronize(MustNew([]int64{1, 2, 3}, Options{}))
	answers, errs := idx.ExecuteBatch(nil)
	if len(answers) != 0 || len(errs) != 0 {
		t.Fatal("empty batch should return empty slices")
	}
}

func TestRefineStepConvergesEveryConvergentStrategy(t *testing.T) {
	vals := data.Uniform(20_000, 5)
	for _, s := range []Strategy{
		StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD,
		StrategyProgressiveHash, StrategyImprints, StrategyFullIndex,
	} {
		if !s.Convergent() {
			t.Fatalf("%v should be convergent", s)
		}
		idx := Synchronize(MustNew(vals, Options{Strategy: s, Delta: 0.25}))
		if p := idx.Progress(); p != 0 {
			t.Fatalf("%v: fresh progress = %v, want 0", s, p)
		}
		converge(t, idx)
		if !idx.Converged() || idx.Progress() != 1 {
			t.Fatalf("%v: converged=%v progress=%v after RefineStep loop",
				s, idx.Converged(), idx.Progress())
		}
		// RefineStep on a converged index is a cheap no-op.
		if st, done := idx.RefineStep(); !done || st.WorkSeconds != 0 {
			t.Fatalf("%v: post-convergence RefineStep = %+v, %v", s, st, done)
		}
		// And the converged index answers exactly.
		want := column.AggRangeBranching(vals, 500, 12_000)
		ans, err := idx.Execute(Request{Pred: Range(500, 12_000)})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Sum != want.Sum || ans.Count != want.Count {
			t.Fatalf("%v: post-convergence answer %d/%d, want %d/%d",
				s, ans.Sum, ans.Count, want.Sum, want.Count)
		}
	}
}

func TestRefineStepStatsReuseBudgetMapping(t *testing.T) {
	vals := data.Uniform(50_000, 6)
	idx := Synchronize(MustNew(vals, Options{Strategy: StrategyQuicksort, Delta: 0.25}))
	st, done := idx.RefineStep()
	if done {
		t.Fatal("one step cannot converge a 50k index at δ=0.25")
	}
	// The idle slice runs through the same budgeter as a real query:
	// one creation step indexes the configured δ of the data.
	if st.Phase != PhaseCreation || st.Delta < 0.2 || st.Delta > 0.3 {
		t.Fatalf("idle slice stats = %+v, want a creation step of ~δ=0.25", st)
	}
}

// blockingIndex lets a test hold the Synchronized write lock at will.
type blockingIndex struct {
	Index
	entered chan struct{}
	release chan struct{}
}

func (b *blockingIndex) Execute(req Request) (Answer, error) {
	select {
	case b.entered <- struct{}{}: // first caller announces itself
	default:
	}
	<-b.release // closed after the contention check; later calls pass through
	return b.Index.Execute(req)
}

func TestTryExecuteDoesNotBlock(t *testing.T) {
	vals := data.Uniform(5_000, 7)
	inner := &blockingIndex{
		Index:   MustNew(vals, Options{Strategy: StrategyFullScan}),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	idx := Synchronize(inner)

	go idx.Execute(Request{Pred: Range(0, 100)})
	<-inner.entered // the goroutine now holds the write lock

	if _, ok, err := idx.TryExecute(Request{Pred: Range(0, 100)}); ok || err != nil {
		t.Fatalf("TryExecute under contention = ok=%v err=%v, want ok=false", ok, err)
	}
	close(inner.release)

	// Uncontended TryExecute succeeds and answers exactly.
	for {
		ans, ok, err := idx.TryExecute(Request{Pred: Range(0, 2_000)})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // the background Execute may still be draining
		}
		want := column.AggRangeBranching(vals, 0, 2_000)
		if ans.Sum != want.Sum || ans.Count != want.Count {
			t.Fatalf("TryExecute answer %d/%d, want %d/%d", ans.Sum, ans.Count, want.Sum, want.Count)
		}
		break
	}
}

func TestSynchronizedPhase(t *testing.T) {
	vals := data.Uniform(5_000, 8)
	prog := Synchronize(MustNew(vals, Options{Strategy: StrategyQuicksort, Delta: 0.25}))
	if p, ok := prog.Phase(); !ok || p != PhaseCreation {
		t.Fatalf("fresh progressive Phase = %v, %v", p, ok)
	}
	converge(t, prog)
	if p, ok := prog.Phase(); !ok || p != PhaseDone {
		t.Fatalf("converged Phase = %v, %v", p, ok)
	}
	scan := Synchronize(MustNew(vals, Options{Strategy: StrategyFullScan}))
	if _, ok := scan.Phase(); ok {
		t.Fatal("FullScan should not report a phase")
	}
}

// TestConvergedConcurrentReads exercises the post-convergence shared
// read lock: many goroutines querying a converged index in parallel
// (under -race this patrols the read-only contract of Done-phase
// Execute) with every answer checked against the oracle.
func TestConvergedConcurrentReads(t *testing.T) {
	vals := data.Uniform(30_000, 9)
	for _, s := range []Strategy{
		StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD,
		StrategyProgressiveHash, StrategyImprints,
	} {
		idx := Synchronize(MustNew(vals, Options{Strategy: s, Delta: 0.25}))
		converge(t, idx)

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int64) {
				defer wg.Done()
				for q := int64(0); q < 50; q++ {
					lo := (g*997 + q*131) % 30_000
					hi := lo + 5_000
					ans, err := idx.Execute(Request{Pred: Range(lo, hi), Aggs: AllAggregates})
					if err != nil {
						t.Error(err)
						return
					}
					want := column.AggRangeBranching(vals, lo, hi)
					if ans.Sum != want.Sum || ans.Count != want.Count {
						t.Errorf("%v: converged read %d/%d, want %d/%d",
							s, ans.Sum, ans.Count, want.Sum, want.Count)
						return
					}
					if !idx.Converged() || idx.Progress() != 1 {
						t.Errorf("%v: convergence observability regressed", s)
						return
					}
				}
			}(int64(g))
		}
		wg.Wait()
	}
}
