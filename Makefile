# Development entry points. CI runs test and race; bench is run
# manually (or on a perf host) and its JSON artifacts are committed so
# the performance trajectory is tracked across PRs.

GO ?= go

.PHONY: test race bench microbench fmt vet

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Emits BENCH_kernels.json, BENCH_convergence.json, BENCH_shards.json
# and BENCH_durability.json in the repo root.
bench:
	$(GO) run ./cmd/bench

microbench:
	$(GO) test -bench 'AggRange|SumRange' -benchtime 2x ./internal/column
	$(GO) test -bench Sharded -benchtime 2x ./internal/shard

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
