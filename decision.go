package progidx

// WorkloadHints describes what is known about the expected workload and
// data, feeding the decision tree of Figure 11 (Section 5).
type WorkloadHints struct {
	// PointQueriesOnly: the workload consists (almost) exclusively of
	// point lookups, no wide ranges.
	PointQueriesOnly bool
	// SkewedData: the value distribution is heavily non-uniform.
	SkewedData bool
	// MemoryConstrained: at most one extra copy of the column can be
	// afforded; the bucket-based algorithms transiently need base
	// column + buckets + final array.
	MemoryConstrained bool
}

// Recommend returns the progressive strategy the paper's decision tree
// (Figure 11) selects for the described scenario, following the
// experimental findings of Section 4.4:
//
//   - memory-constrained: Progressive Quicksort — creation allocates a
//     single array and refinement is fully in place. This branch takes
//     precedence over every workload-shape hint: the other three
//     algorithms transiently hold base column + buckets + final array,
//     which is exactly what MemoryConstrained says cannot be afforded,
//     so recommending Radix LSD for a memory-constrained point
//     workload would violate the hint's contract outright;
//   - point-query workloads: Progressive Radixsort (LSD) — its
//     intermediate buckets accelerate point lookups from the first
//     queries on (Table 4, point-query block);
//   - skewed data: Progressive Bucketsort — equi-height bounds keep
//     partitions balanced where radix clustering degenerates (Table 4,
//     skewed block);
//   - otherwise: Progressive Radixsort (MSD) — fastest convergence and
//     best cumulative time on uniform data (Table 2, Figure 7c).
func Recommend(h WorkloadHints) Strategy {
	switch {
	case h.MemoryConstrained:
		return StrategyQuicksort
	case h.PointQueriesOnly:
		return StrategyRadixLSD
	case h.SkewedData:
		return StrategyBucketsort
	default:
		return StrategyRadixMSD
	}
}

// RecommendEncoding extends the decision tree to the storage mode: a
// memory-constrained deployment gets EncodingFORBP — the packed shards
// serve queries in place at a fraction of the resident bytes, and the
// claim-on-heat path decompresses only the shards the workload proves
// it needs, so the steady state honors the "at most one extra copy"
// contract where an eagerly decoded table could not. Everything else
// gets EncodingRaw: with memory to spare, raw storage skips even the
// modest compressed-scan penalty and lets every shard start its
// progressive build on first touch.
func RecommendEncoding(h WorkloadHints) Encoding {
	if h.MemoryConstrained {
		return EncodingFORBP
	}
	return EncodingRaw
}

// HintsFromRequests derives the workload-shape hints the decision tree
// can observe from a sample of v2 requests: a session issuing only
// point predicates (Point, or degenerate ranges) selects the paper's
// point-query branch. Data-shape hints (skew, memory pressure) cannot
// be read off requests and stay at their zero values; set them
// explicitly before calling Recommend if known.
func HintsFromRequests(reqs []Request) WorkloadHints {
	if len(reqs) == 0 {
		return WorkloadHints{}
	}
	h := WorkloadHints{PointQueriesOnly: true}
	for _, r := range reqs {
		if !r.Pred.IsPoint() {
			h.PointQueriesOnly = false
			break
		}
	}
	return h
}

// HintsFromConjunctions derives per-column workload hints from a
// sample of composite queries: each column's hint set is computed from
// the predicates the conjunction stream actually placed on it, so a
// column that only ever carries equality residuals (`b = v` riding
// alongside another column's range) gets the point-query hint — and
// with it the Radix LSD recommendation — while a range-driven column
// does not. Columns never touched by a predicate are absent from the
// map; data-shape hints stay at their zero values, as in
// HintsFromRequests. The empty column name is the caller's alias for
// the table's first column, exactly as in ColPredicate.
func HintsFromConjunctions(conjs []Conjunction) map[string]WorkloadHints {
	hints := make(map[string]WorkloadHints)
	seen := make(map[string]bool)
	for _, c := range conjs {
		for _, cp := range c.Preds {
			point := cp.Pred.IsPoint()
			if !seen[cp.Col] {
				seen[cp.Col] = true
				hints[cp.Col] = WorkloadHints{PointQueriesOnly: point}
				continue
			}
			if h := hints[cp.Col]; h.PointQueriesOnly && !point {
				h.PointQueriesOnly = false
				hints[cp.Col] = h
			}
		}
	}
	return hints
}
