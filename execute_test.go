package progidx

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/column"
)

// oracleAnswer computes every aggregate with the naive branching kernel
// directly from the raw (unclamped) predicate — the ground truth every
// Execute implementation must match regardless of index state. A
// Predicate stores its effective inclusive bounds, so the canonical
// branching oracle applies verbatim.
func oracleAnswer(values []int64, p Predicate) column.Agg {
	return column.AggRangeBranching(values, p.Lo, p.Hi)
}

// checkAnswer verifies ans against the oracle under the mask semantics:
// Count is always populated; Sum when requested (or pulled in by Avg);
// Min/Max/Avg only when requested and at least one row matched.
func checkAnswer(t *testing.T, name string, p Predicate, aggs Aggregates, ans Answer, want column.Agg) {
	t.Helper()
	norm := aggs.Normalize()
	if ans.Aggs != norm {
		t.Fatalf("%s %v %v: Answer.Aggs = %v, want normalized %v", name, p, aggs, ans.Aggs, norm)
	}
	if ans.Count != want.Count {
		t.Fatalf("%s %v %v: Count = %d, want %d", name, p, aggs, ans.Count, want.Count)
	}
	if norm.Has(Sum) && ans.Sum != want.Sum {
		t.Fatalf("%s %v %v: Sum = %d, want %d", name, p, aggs, ans.Sum, want.Sum)
	}
	if norm.Has(Min) && want.Count > 0 && ans.Min != want.Min {
		t.Fatalf("%s %v %v: Min = %d, want %d", name, p, aggs, ans.Min, want.Min)
	}
	if norm.Has(Max) && want.Count > 0 && ans.Max != want.Max {
		t.Fatalf("%s %v %v: Max = %d, want %d", name, p, aggs, ans.Max, want.Max)
	}
	if norm.Has(Avg) && want.Count > 0 {
		if wantAvg := float64(want.Sum) / float64(want.Count); ans.Avg != wantAvg {
			t.Fatalf("%s %v %v: Avg = %v, want %v", name, p, aggs, ans.Avg, wantAvg)
		}
	}
}

// testColumn builds a deterministic column that exercises negatives,
// duplicates and both in-domain extremes: the first two values sit at
// ±(MaxMagnitude-1), the largest magnitudes a column accepts, so the
// kernels' overflow headroom is actually exercised (the pair cancels
// in SUM, keeping the other aggregate expectations readable).
func testColumn(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(8000) - 4000
	}
	vals[0] = column.MaxMagnitude - 1
	vals[1] = -column.MaxMagnitude + 1
	return vals
}

// predicatePool returns the predicate shapes the property test cycles
// through: every kind, plus the empty-range and extreme-bound cases the
// clamping layer must survive.
func predicatePool(rng *rand.Rand, vals []int64) []Predicate {
	n := int64(len(vals))
	lo := rng.Int63n(n) - n/2
	return []Predicate{
		Range(lo, lo+rng.Int63n(2000)),
		Range(lo+1000, lo), // inverted: valid, empty
		Range(math.MinInt64, math.MaxInt64),
		Range(-column.MaxMagnitude, 0),
		Point(vals[rng.Intn(len(vals))]),
		Point(9_999_999), // outside the domain
		Point(math.MaxInt64),
		Point(-column.MaxMagnitude),
		AtLeast(lo),
		AtLeast(math.MaxInt64),
		AtLeast(-column.MaxMagnitude),
		AtMost(lo),
		AtMost(math.MinInt64),
		AtMost(column.MaxMagnitude),
	}
}

var aggMaskPool = []Aggregates{
	0, // default: SUM+COUNT, the v1 contract
	Sum,
	Count,
	Min,
	Max,
	Avg,
	Min | Max,
	Sum | Avg,
	AllAggregates,
}

// TestExecuteMatchesOracleAllStrategies is the acceptance-criteria
// property test: every predicate kind × aggregate mask × all 13
// strategies, checked against the branching oracle while the index
// advances through its lifecycle (each Execute call also performs
// indexing work, so the sequence visits creation, refinement and
// consolidation states).
func TestExecuteMatchesOracleAllStrategies(t *testing.T) {
	vals := testColumn(4000, 11)
	for _, s := range allStrategies {
		idx := MustNew(vals, Options{Strategy: s, Delta: 0.3, Seed: 7})
		rng := rand.New(rand.NewSource(int64(s)))
		for round := 0; round < 10; round++ {
			for pi, p := range predicatePool(rng, vals) {
				aggs := aggMaskPool[(round+pi)%len(aggMaskPool)]
				ans, err := idx.Execute(Request{Pred: p, Aggs: aggs})
				if err != nil {
					t.Fatalf("%v Execute(%v, %v): %v", s, p, aggs, err)
				}
				checkAnswer(t, s.String(), p, aggs, ans, oracleAnswer(vals, p))
			}
		}
	}
}

// TestExecuteConvergedMatchesOracle re-runs the oracle check after the
// progressive strategies have fully converged, so the B+-tree and
// sorted-run kernels (AggSorted, Tree.AggRange) are the paths under
// test rather than the scan fallbacks.
func TestExecuteConvergedMatchesOracle(t *testing.T) {
	vals := testColumn(3000, 12)
	for _, s := range []Strategy{StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD, StrategyFullIndex} {
		idx := MustNew(vals, Options{Strategy: s, Delta: 1})
		for q := 0; q < 400 && !idx.Converged(); q++ {
			idx.Query(-4000, 4000)
		}
		if !idx.Converged() {
			t.Fatalf("%v did not converge", s)
		}
		rng := rand.New(rand.NewSource(21))
		for round := 0; round < 6; round++ {
			for pi, p := range predicatePool(rng, vals) {
				aggs := aggMaskPool[(round+pi)%len(aggMaskPool)]
				ans, err := idx.Execute(Request{Pred: p, Aggs: aggs})
				if err != nil {
					t.Fatalf("%v Execute(%v, %v): %v", s, p, aggs, err)
				}
				checkAnswer(t, s.String()+"/converged", p, aggs, ans, oracleAnswer(vals, p))
			}
		}
	}
}

// TestQueryMatchesExecutePath checks the v1 compatibility contract:
// Query(lo, hi) returns exactly the SUM/COUNT pair Execute computes for
// the equivalent Range request. Both are checked against the oracle on
// interleaved calls so the shared execution path is exercised in every
// index state.
func TestQueryMatchesExecutePath(t *testing.T) {
	vals := testColumn(3000, 13)
	for _, s := range allStrategies {
		idx := MustNew(vals, Options{Strategy: s, Delta: 0.4, Seed: 5})
		rng := rand.New(rand.NewSource(31))
		for q := 0; q < 30; q++ {
			lo := rng.Int63n(8000) - 4000
			hi := lo + rng.Int63n(3000)
			p := Range(lo, hi)
			want := oracleAnswer(vals, p)
			if q%2 == 0 {
				got := idx.Query(lo, hi)
				if got.Sum != want.Sum || got.Count != want.Count {
					t.Fatalf("%v Query(%d,%d) = %+v, want %+v", s, lo, hi, got, want)
				}
			} else {
				ans, err := idx.Execute(Request{Pred: p})
				if err != nil {
					t.Fatal(err)
				}
				if r := ans.Result(); r.Sum != want.Sum || r.Count != want.Count {
					t.Fatalf("%v Execute(%v) = %+v, want %+v", s, p, r, want)
				}
			}
		}
	}
}

// TestExecuteStatsInline verifies the side-channel elimination: the
// Stats in the Answer are the stats of that same call (identical to
// what the deprecated LastStats reports immediately afterwards), and
// progressive indexes report phase progress through them.
func TestExecuteStatsInline(t *testing.T) {
	vals := testColumn(4000, 14)
	for _, s := range []Strategy{StrategyQuicksort, StrategyRadixMSD, StrategyBucketsort, StrategyRadixLSD} {
		idx := MustNew(vals, Options{Strategy: s, Delta: 0.5}).(ProgressiveIndex)
		sawDone := false
		for q := 0; q < 200 && !sawDone; q++ {
			ans, err := idx.Execute(Request{Pred: Range(-1000, 1000)})
			if err != nil {
				t.Fatal(err)
			}
			if ans.Stats != idx.LastStats() {
				t.Fatalf("%v: Answer.Stats %+v != LastStats %+v", s, ans.Stats, idx.LastStats())
			}
			if q == 0 && ans.Stats.Phase != PhaseCreation {
				t.Fatalf("%v: first query phase = %v, want creation", s, ans.Stats.Phase)
			}
			if q == 0 && ans.Stats.Delta <= 0 {
				t.Fatalf("%v: first query did no indexing work: %+v", s, ans.Stats)
			}
			sawDone = idx.Converged()
		}
		if !sawDone {
			t.Fatalf("%v never converged under Execute", s)
		}
	}
	// Non-progressive strategies answer with zero work Stats; only the
	// worker count of the scan kernels is reported.
	fs := MustNew(vals, Options{Strategy: StrategyFullScan})
	ans, err := fs.Execute(Request{Pred: Point(0)})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.Workers < 1 {
		t.Fatalf("FullScan Stats.Workers = %d, want >= 1", ans.Stats.Workers)
	}
	ans.Stats.Workers = 0
	if ans.Stats != (Stats{}) {
		t.Fatalf("FullScan Stats = %+v, want zero work stats", ans.Stats)
	}
}

// TestExecuteRejectsMalformedRequests covers the error path: unknown
// predicate kinds and undefined aggregate bits fail loudly instead of
// answering something undefined.
func TestExecuteRejectsMalformedRequests(t *testing.T) {
	vals := testColumn(500, 15)
	for _, s := range allStrategies {
		idx := MustNew(vals, Options{Strategy: s})
		if _, err := idx.Execute(Request{Pred: Predicate{Kind: 99}}); err == nil {
			t.Fatalf("%v accepted an unknown predicate kind", s)
		}
		if _, err := idx.Execute(Request{Pred: Range(0, 1), Aggs: Aggregates(0x80)}); err == nil {
			t.Fatalf("%v accepted unknown aggregate bits", s)
		}
	}
}

// TestPointFastPathsStayExact pins the point-query surface of the two
// point-optimized strategies: a Point request must be answered exactly
// both for present and absent values while the index fills in.
func TestPointFastPathsStayExact(t *testing.T) {
	vals := testColumn(6000, 16)
	for _, s := range []Strategy{StrategyProgressiveHash, StrategyRadixLSD} {
		idx := MustNew(vals, Options{Strategy: s, Delta: 0.2})
		rng := rand.New(rand.NewSource(41))
		for q := 0; q < 40; q++ {
			var p Predicate
			if q%3 == 0 {
				p = Point(rng.Int63n(10000) - 5000) // often absent
			} else {
				p = Point(vals[rng.Intn(len(vals))])
			}
			ans, err := idx.Execute(Request{Pred: p, Aggs: AllAggregates})
			if err != nil {
				t.Fatal(err)
			}
			checkAnswer(t, s.String(), p, AllAggregates, ans, oracleAnswer(vals, p))
		}
	}
}

// TestSynchronizedExecuteCoherent hammers a shared index with
// concurrent Execute calls and checks what the deprecated Stats() side
// channel could not provide: every answer is exact, and the Stats
// carried inline belong to a call taken under the lock — observed as a
// phase that never regresses within any single goroutine, since the
// index's lifecycle only moves forward.
func TestSynchronizedExecuteCoherent(t *testing.T) {
	vals := testColumn(20000, 17)
	for _, s := range []Strategy{StrategyRadixMSD, StrategyStandardCracking} {
		idx := Synchronize(MustNew(vals, Options{Strategy: s, Delta: 0.2}))
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				phase := PhaseCreation
				for q := 0; q < 60; q++ {
					lo := rng.Int63n(8000) - 4000
					p := Range(lo, lo+rng.Int63n(2000))
					ans, err := idx.Execute(Request{Pred: p, Aggs: AllAggregates})
					want := oracleAnswer(vals, p)
					bad := err != nil || ans.Count != want.Count || ans.Sum != want.Sum ||
						(want.Count > 0 && (ans.Min != want.Min || ans.Max != want.Max)) ||
						ans.Stats.Phase < phase
					if bad {
						select {
						case errs <- idx.Name():
						default:
						}
						return
					}
					phase = ans.Stats.Phase
				}
			}(int64(g))
		}
		wg.Wait()
		close(errs)
		if name, bad := <-errs; bad {
			t.Fatalf("%s returned an incoherent answer under concurrency", name)
		}
	}
}

// TestQueryClampsExtremeBounds pins the v1 wrapper's routing through
// Execute: open-ended queries spelled with the int64 extremes must be
// clamped to the column domain instead of overflowing the branch-free
// kernels and silently dropping every match.
func TestQueryClampsExtremeBounds(t *testing.T) {
	vals := []int64{5, 20, -8, 20}
	for _, s := range allStrategies {
		idx := MustNew(vals, Options{Strategy: s, Seed: 1})
		if got := idx.Query(math.MinInt64, 10); got.Sum != -3 || got.Count != 2 {
			t.Fatalf("%v Query(MinInt64, 10) = %+v, want {-3 2}", s, got)
		}
		if got := idx.Query(10, math.MaxInt64); got.Sum != 40 || got.Count != 2 {
			t.Fatalf("%v Query(10, MaxInt64) = %+v, want {40 2}", s, got)
		}
	}
}

// TestHintsFromRequests pins the v2 bridge into the decision tree.
func TestHintsFromRequests(t *testing.T) {
	points := []Request{{Pred: Point(3)}, {Pred: Range(5, 5)}}
	if h := HintsFromRequests(points); !h.PointQueriesOnly {
		t.Fatalf("all-point sample not detected: %+v", h)
	}
	if s := Recommend(HintsFromRequests(points)); s != StrategyRadixLSD {
		t.Fatalf("point workload recommends %v, want PLSD", s)
	}
	mixed := append(points, Request{Pred: AtLeast(0)})
	if h := HintsFromRequests(mixed); h.PointQueriesOnly {
		t.Fatalf("mixed sample misdetected as point-only: %+v", h)
	}
	if h := HintsFromRequests(nil); h.PointQueriesOnly {
		t.Fatal("empty sample must not claim point-only")
	}
}

// TestHintsFromConjunctions pins the per-column hint derivation from a
// composite-query stream: the workload drives column a with ranges and
// only ever places equality residuals on column b, so b — and only b —
// gets the point-query hint and the Radix LSD recommendation.
func TestHintsFromConjunctions(t *testing.T) {
	session := []Conjunction{
		Conj("a", 0, On("a", Range(100, 5000)), On("b", Point(7))),
		Conj("a", 0, On("a", Range(200, 9000)), On("b", Range(3, 3))),
		Conj("a", 0, On("a", AtLeast(50)), On("b", Point(9))),
	}
	hints := HintsFromConjunctions(session)
	if h, ok := hints["a"]; !ok || h.PointQueriesOnly {
		t.Fatalf("range-driven column a misdetected: %+v (present=%v)", h, ok)
	}
	if h, ok := hints["b"]; !ok || !h.PointQueriesOnly {
		t.Fatalf("equality-residual column b not point-only: %+v (present=%v)", h, ok)
	}
	if s := Recommend(hints["b"]); s != StrategyRadixLSD {
		t.Fatalf("point-residual column recommends %v, want PLSD", s)
	}
	if s := Recommend(hints["a"]); s != StrategyRadixMSD {
		t.Fatalf("range-driven column recommends %v, want PMSD", s)
	}

	// A single wide range on b, however late, clears its point hint.
	session = append(session, Conj("a", 0, On("b", Range(0, 1000))))
	if h := HintsFromConjunctions(session)["b"]; h.PointQueriesOnly {
		t.Fatal("wide range on b did not clear its point hint")
	}

	// Untouched columns are absent; an empty stream yields no hints.
	if _, ok := hints["c"]; ok {
		t.Fatal("never-predicated column has a hint entry")
	}
	if got := HintsFromConjunctions(nil); len(got) != 0 {
		t.Fatalf("empty stream produced hints: %v", got)
	}

	// The empty column name (first-column alias) is tracked as its own
	// key, matching ColPredicate semantics.
	alias := []Conjunction{Conj("", 0, On("", Point(1)))}
	if h, ok := HintsFromConjunctions(alias)[""]; !ok || !h.PointQueriesOnly {
		t.Fatalf("first-column alias not tracked: %+v (present=%v)", h, ok)
	}
}

// TestHintsFromRequestsDegenerateRanges pins that a session issuing
// only degenerate Range(x, x) predicates — single-value BETWEENs, the
// way some clients spell point probes — selects the point branch just
// like explicit Point requests.
func TestHintsFromRequestsDegenerateRanges(t *testing.T) {
	degenerate := []Request{
		{Pred: Range(7, 7)}, {Pred: Range(-2, -2)}, {Pred: Range(0, 0)},
	}
	h := HintsFromRequests(degenerate)
	if !h.PointQueriesOnly {
		t.Fatalf("degenerate-range session not detected as point-only: %+v", h)
	}
	if s := Recommend(h); s != StrategyRadixLSD {
		t.Fatalf("degenerate-range session recommends %v, want PLSD", s)
	}
}

// TestHintsFromRequestsWideRangeClearsLongPointSession pins that one
// wide range buried in a long point session clears PointQueriesOnly:
// the hint means (almost) exclusively point lookups, and a genuine
// range scan breaks it no matter how late it appears.
func TestHintsFromRequestsWideRangeClearsLongPointSession(t *testing.T) {
	session := make([]Request, 0, 501)
	for i := 0; i < 250; i++ {
		session = append(session, Request{Pred: Point(int64(i))})
		session = append(session, Request{Pred: Range(int64(i), int64(i))})
	}
	session = append(session, Request{Pred: Range(10, 5000)}) // the one wide range
	if h := HintsFromRequests(session); h.PointQueriesOnly {
		t.Fatal("a wide range in a 501-query point session did not clear PointQueriesOnly")
	}
	// The same session without the wide range stays point-only.
	if h := HintsFromRequests(session[:500]); !h.PointQueriesOnly {
		t.Fatal("pure point session lost PointQueriesOnly")
	}
}

// TestHintsFromRequestsEmptySampleZeroValued pins that an empty sample
// yields the zero WorkloadHints in every field — no hint can be read
// off no observations.
func TestHintsFromRequestsEmptySampleZeroValued(t *testing.T) {
	for _, sample := range [][]Request{nil, {}} {
		if h := HintsFromRequests(sample); h != (WorkloadHints{}) {
			t.Fatalf("HintsFromRequests(%v) = %+v, want zero value", sample, h)
		}
	}
}
