//go:build race

package progidx

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation (and sync.Pool randomization) adds
// allocations the zero-alloc pins must not count.
const raceEnabled = true
