// Command progidx runs a single index strategy against a chosen data
// set and workload, streaming per-query progress — a quick way to watch
// a progressive index move through its creation, refinement and
// consolidation phases.
//
// Usage:
//
//	progidx -strategy pmsd -data skyserver -workload skyserver -n 1000000
//	progidx -strategy pq -delta 0.1 -workload zoomin
//	progidx -strategy std -data skewed -workload seqover
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/workload"
)

var strategies = map[string]progidx.Strategy{
	"pq":    progidx.StrategyQuicksort,
	"pmsd":  progidx.StrategyRadixMSD,
	"pb":    progidx.StrategyBucketsort,
	"plsd":  progidx.StrategyRadixLSD,
	"fs":    progidx.StrategyFullScan,
	"fi":    progidx.StrategyFullIndex,
	"std":   progidx.StrategyStandardCracking,
	"stc":   progidx.StrategyStochasticCracking,
	"pstc":  progidx.StrategyProgressiveStochastic,
	"cgi":   progidx.StrategyCoarseGranular,
	"aa":    progidx.StrategyAdaptiveAdaptive,
	"phash": progidx.StrategyProgressiveHash,
	"pimp":  progidx.StrategyImprints,
}

func main() {
	var (
		strategy = flag.String("strategy", "pq", "pq|pmsd|pb|plsd|fs|fi|std|stc|pstc|cgi|aa|phash|pimp")
		dataset  = flag.String("data", "uniform", "uniform|skewed|skyserver")
		wl       = flag.String("workload", "random", "random|seqover|zoomin|zoomout|skew|periodic|seqzoomin|zoominalt|point|skyserver")
		n        = flag.Int("n", 1_000_000, "column size")
		queries  = flag.Int("queries", 200, "number of queries")
		delta    = flag.Float64("delta", 0.25, "fixed indexing fraction per query")
		budgetMS = flag.Float64("budget", 0, "per-query indexing budget in ms (overrides -delta)")
		adaptive = flag.Bool("adaptive", false, "adaptive budget (keep total query time constant)")
		seed     = flag.Int64("seed", 42, "seed")
		every    = flag.Int("every", 10, "print every k-th query")
	)
	flag.Parse()

	strat, ok := strategies[strings.ToLower(*strategy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	var vals []int64
	domain := int64(*n)
	switch *dataset {
	case "uniform":
		vals = data.Uniform(*n, *seed)
	case "skewed":
		vals = data.Skewed(*n, *seed)
	case "skyserver":
		vals = data.SkyServer(*n, *seed)
		domain = data.SkyServerDomain
	default:
		fmt.Fprintf(os.Stderr, "unknown data set %q\n", *dataset)
		os.Exit(2)
	}

	var gen workload.Generator
	switch *wl {
	case "random":
		gen = workload.Random(domain, *seed+1)
	case "seqover":
		gen = workload.SeqOver(domain, *queries)
	case "zoomin":
		gen = workload.ZoomIn(domain, *queries)
	case "zoomout":
		gen = workload.ZoomOutAlt(domain, *queries)
	case "skew":
		gen = workload.Skew(domain, *seed+1)
	case "periodic":
		gen = workload.Periodic(domain, *queries)
	case "seqzoomin":
		gen = workload.SeqZoomIn(domain, *queries)
	case "zoominalt":
		gen = workload.ZoomInAlt(domain, *queries)
	case "point":
		gen = workload.PointVersion(workload.Random(domain, *seed+1))
	case "skyserver":
		gen = workload.SkyServer(domain, *seed+1)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	opts := progidx.Options{
		Strategy: strat,
		Delta:    *delta,
		Adaptive: *adaptive,
		Seed:     *seed,
	}
	if *budgetMS > 0 {
		opts.Budget = time.Duration(*budgetMS * float64(time.Millisecond))
		opts.Calibrate = true // wall-clock budgets need measured constants
	}
	idx, err := progidx.New(vals, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("strategy=%s data=%s(%d rows) workload=%s queries=%d\n\n",
		idx.Name(), *dataset, *n, gen.Name(), *queries)

	_, hasPhases := idx.(progidx.ProgressiveIndex)
	total := 0.0
	convergedAt := -1
	for i := 0; i < *queries; i++ {
		q := gen.Query(i)
		// Point workloads are issued as Point predicates so the
		// point-optimized strategies (plsd, phash) hit their fast paths.
		pred := progidx.Range(q.Lo, q.Hi)
		if q.Lo == q.Hi {
			pred = progidx.Point(q.Lo)
		}
		start := time.Now()
		ans, err := idx.Execute(progidx.Request{Pred: pred})
		dt := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total += dt
		if convergedAt < 0 && idx.Converged() {
			convergedAt = i
			fmt.Printf("  >>> converged at query %d <<<\n", i+1)
		}
		if i%*every == 0 || i == *queries-1 {
			phase := ""
			if hasPhases {
				// The per-query stats travel inline in the answer.
				phase = fmt.Sprintf("  phase=%-13s δ=%.4f", ans.Stats.Phase, ans.Stats.Delta)
			}
			fmt.Printf("q%-5d [%d, %d]  sum=%-16d count=%-9d %.3fms%s\n",
				i+1, q.Lo, q.Hi, ans.Sum, ans.Count, dt*1000, phase)
		}
	}
	fmt.Printf("\ncumulative=%.3fs  mean=%.3fms", total, total/float64(*queries)*1000)
	if convergedAt >= 0 {
		fmt.Printf("  converged_at=%d", convergedAt+1)
	} else {
		fmt.Printf("  converged_at=never")
	}
	fmt.Println()
}
