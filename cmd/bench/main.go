// Command bench is the repository's reproducible performance runner
// (`make bench`). It emits four JSON artifacts tracked across PRs:
//
//	BENCH_kernels.json     — ns/op of the serial scan kernels vs the
//	                         parallel kernels at 1/2/4/8 workers on a
//	                         10M-row column, with answer-identity
//	                         verification baked in;
//	BENCH_convergence.json — wall-clock time and query count to
//	                         convergence per progressive strategy,
//	                         serial vs all-core;
//	BENCH_shards.json      — sharded execution sweep (shard count ×
//	                         selectivity on clustered data), with
//	                         pruned-shards-do-zero-work verification;
//	BENCH_durability.json  — WAL append throughput per fsync policy,
//	                         recovery time vs WAL-tail length, and
//	                         snapshot write cost vs table size, with
//	                         recovered answers checked against the
//	                         branching oracle;
//	BENCH_planner.json     — composite-predicate driver choice on a
//	                         correlated multi-column table: the
//	                         planner's pick vs every pinned driving
//	                         column at 0.1% selectivity, with answers
//	                         checked per query against a brute-force
//	                         row scan.
//
// Usage:
//
//	go run ./cmd/bench                  # all suites, default sizes
//	go run ./cmd/bench -n 20000000      # bigger kernel column
//	go run ./cmd/bench -suite shards    # one suite only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/column"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/encode"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/query"
)

// Host describes the machine a run happened on; speedups are
// meaningless without it (a 1-core container cannot show one). The
// hostname hash distinguishes artifacts from different machines —
// e.g. a 1-core CI container vs a real multi-core perf host — without
// leaking the actual hostname into a committed file.
type Host struct {
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	GoVersion    string `json:"go_version"`
	HostnameHash string `json:"hostname_hash"`
}

func host() Host {
	return Host{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		HostnameHash: hostnameHash(),
	}
}

// hostnameHash returns an 8-hex-digit FNV-1a of the hostname, or
// "unknown" when the hostname is unavailable.
func hostnameHash() string {
	name, err := os.Hostname()
	if err != nil || name == "" {
		return "unknown"
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return fmt.Sprintf("%08x", h.Sum32())
}

// KernelResult is one (kernel, workers) measurement.
type KernelResult struct {
	Kernel       string  `json:"kernel"`
	Workers      int     `json:"workers"`
	NsPerOp      float64 `json:"ns_per_op"`
	ElemsPerSec  float64 `json:"elems_per_sec"`
	SpeedupVsSer float64 `json:"speedup_vs_serial"`
	Identical    bool    `json:"identical_answer"`
}

// EncodingResult is one (dataset, encoding, aggregate-mask) scan
// measurement over a column held as a single encode.Segment: resident
// footprint (bytes/row, vs 8 for a raw int64 column) and the cost of
// scanning the compressed representation relative to the raw kernel on
// the same machine, with answer identity verified on every run.
type EncodingResult struct {
	Data     string `json:"data"`     // uniform | skewed_lowcard
	Encoding string `json:"encoding"` // requested mode
	Kind     string `json:"kind"`     // physical encoding chosen
	Aggs     string `json:"aggs"`     // sum_count | all
	N        int    `json:"n"`
	// WidthBits is the packed bit width (delta bits for FOR-BP, code
	// bits for dict; 64 for raw).
	WidthBits        int     `json:"width_bits"`
	BytesPerRow      float64 `json:"bytes_per_row"`
	RawBytesPerRow   float64 `json:"raw_bytes_per_row"`
	CompressionRatio float64 `json:"compression_ratio"`
	ResidentMB       float64 `json:"resident_mb"`
	RawResidentMB    float64 `json:"raw_resident_mb"`
	ScanNsPerOp      float64 `json:"scan_ns_per_op"`
	RawScanNsPerOp   float64 `json:"raw_scan_ns_per_op"`
	// ScanPenaltyVsRaw is scan/raw - 1: positive means the compressed
	// scan is slower than the raw kernel, negative means faster.
	ScanPenaltyVsRaw float64 `json:"scan_penalty_vs_raw"`
	Identical        bool    `json:"identical_answer"`
}

type kernelsReport struct {
	Host      Host             `json:"host"`
	N         int              `json:"n"`
	Reps      int              `json:"reps"`
	Timestamp string           `json:"timestamp"`
	Results   []KernelResult   `json:"results"`
	Encodings []EncodingResult `json:"encodings"`
}

// ShardResult is one (shards, selectivity) run of the sharded
// execution sweep.
type ShardResult struct {
	Shards         int     `json:"shards"`
	Selectivity    float64 `json:"selectivity"`
	N              int     `json:"n"`
	Queries        int     `json:"queries"`
	MeanQueryMs    float64 `json:"mean_query_ms"`
	FirstQueryMs   float64 `json:"first_query_ms"`
	TotalSec       float64 `json:"total_seconds"`
	WorkSec        float64 `json:"indexing_work_seconds"`
	ExecutedShards int     `json:"executed_shards"`
	PrunedShards   int     `json:"pruned_shards"`
	// PrunedZeroWork verifies the pruning guarantee via ShardStats:
	// every shard whose zone map misses the workload's hot region
	// reports zero executions and zero refine slices — no scan work,
	// no indexing work.
	PrunedZeroWork bool `json:"pruned_shards_zero_work"`
	// SpeedupVsUnsharded is mean_query_ms(shards=1) / mean_query_ms at
	// the same selectivity.
	SpeedupVsUnsharded float64 `json:"speedup_vs_unsharded"`
	AnswersMatch       bool    `json:"answers_match_oracle"`
}

type shardsReport struct {
	Host      Host          `json:"host"`
	Timestamp string        `json:"timestamp"`
	Strategy  string        `json:"strategy"`
	Delta     float64       `json:"delta"`
	Results   []ShardResult `json:"results"`
}

// runShards sweeps shard count × selectivity on clustered data (values
// correlate with row position, as time-ordered loads do, so row-range
// shards carry tight zone maps). The workload confines its predicates
// to the first quarter of the value domain: shards outside it must be
// pruned by their zone maps and perform zero work, which is verified
// through ShardStats and reported per configuration.
func runShards(n, queries int, delta float64) shardsReport {
	rep := shardsReport{
		Host: host(), Timestamp: time.Now().UTC().Format(time.RFC3339),
		Strategy: "PQ", Delta: delta,
	}
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, n)
	noise := int64(n / 200)
	for i := range vals {
		vals[i] = int64(i) + rng.Int63n(2*noise+1) - noise
	}
	hotMax := int64(n / 4) // queries live in the first quarter of the domain

	type qr struct{ lo, hi int64 }
	baseline := map[float64]float64{} // selectivity → shards=1 mean ms
	for _, shards := range []int{1, 2, 4, 8, 16} {
		for _, sel := range []float64{0.001, 0.01, 0.1} {
			width := int64(float64(n) * sel)
			if width < 1 {
				width = 1
			}
			qrng := rand.New(rand.NewSource(7))
			qs := make([]qr, queries)
			for i := range qs {
				lo := qrng.Int63n(hotMax)
				qs[i] = qr{lo, lo + width}
			}
			sh, err := progidx.NewSharded(vals, progidx.Options{
				Strategy: progidx.StrategyQuicksort, Delta: delta, Shards: shards,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res := ShardResult{Shards: shards, Selectivity: sel, N: n, Queries: queries, AnswersMatch: true}
			for i, q := range qs {
				start := time.Now()
				ans, err := sh.Execute(progidx.Request{Pred: progidx.Range(q.lo, q.hi)})
				dt := time.Since(start).Seconds()
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				res.TotalSec += dt
				if i == 0 {
					res.FirstQueryMs = dt * 1000
				}
				res.WorkSec += ans.Stats.WorkSeconds
				want := column.AggRangeBranching(vals, q.lo, q.hi)
				if ans.Sum != want.Sum || ans.Count != want.Count {
					res.AnswersMatch = false
				}
			}
			res.MeanQueryMs = res.TotalSec / float64(queries) * 1000
			res.PrunedZeroWork = true
			for _, si := range sh.ShardStats() {
				if si.Executes > 0 {
					res.ExecutedShards++
					continue
				}
				res.PrunedShards++
				if si.Refines != 0 || si.Heat != 0 || si.Progress != 0 {
					res.PrunedZeroWork = false
				}
				// A shard was only allowed to idle if its zone map
				// really misses the hot region (his reach at most
				// hotMax-1+width).
				if si.MinValue < hotMax+width {
					res.PrunedZeroWork = false
				}
			}
			if shards == 1 {
				baseline[sel] = res.MeanQueryMs
			}
			if base := baseline[sel]; base > 0 && res.MeanQueryMs > 0 {
				res.SpeedupVsUnsharded = base / res.MeanQueryMs
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}

// ConvergenceResult is one (strategy, workers) run to convergence.
type ConvergenceResult struct {
	Strategy       string  `json:"strategy"`
	Workers        int     `json:"workers"`
	N              int     `json:"n"`
	Delta          float64 `json:"delta"`
	Queries        int     `json:"queries_run"`
	ConvergedAt    int     `json:"converged_at"` // 1-based; -1 = never
	CumulativeSec  float64 `json:"cumulative_seconds"`
	MeanQueryMs    float64 `json:"mean_query_ms"`
	FirstQueryMs   float64 `json:"first_query_ms"`
	MaxQueryMs     float64 `json:"max_query_ms"`
	FinalSum       int64   `json:"final_sum"` // cross-worker identity check
	FinalSumAgrees bool    `json:"final_sum_agrees_with_serial"`
}

type convergenceReport struct {
	Host      Host                `json:"host"`
	Timestamp string              `json:"timestamp"`
	Results   []ConvergenceResult `json:"results"`
}

// timeBest returns the fastest of reps timings of fn, in seconds.
func timeBest(reps int, fn func()) float64 {
	best := 1e300
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		fn()
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best
}

func runKernels(n, reps int) kernelsReport {
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(int64(n))
	}
	lo, hi := int64(n)/4, 3*int64(n)/4
	want := column.AggRange(vals, lo, hi, column.AggAll)
	wantSum := column.SumRange(vals, lo, hi)

	rep := kernelsReport{Host: host(), N: n, Reps: reps, Timestamp: time.Now().UTC().Format(time.RFC3339)}
	var sink column.Agg
	var sinkRes column.Result

	serialAgg := timeBest(reps, func() { sink = column.AggRange(vals, lo, hi, column.AggAll) })
	rep.Results = append(rep.Results, KernelResult{
		Kernel: "AggRange", Workers: 1,
		NsPerOp:      serialAgg * 1e9,
		ElemsPerSec:  float64(n) / serialAgg,
		SpeedupVsSer: 1, Identical: sink == want,
	})
	serialSum := timeBest(reps, func() { sinkRes = column.SumRange(vals, lo, hi) })
	rep.Results = append(rep.Results, KernelResult{
		Kernel: "SumRange", Workers: 1,
		NsPerOp:      serialSum * 1e9,
		ElemsPerSec:  float64(n) / serialSum,
		SpeedupVsSer: 1, Identical: sinkRes == wantSum,
	})

	for _, workers := range []int{1, 2, 4, 8} {
		p := parallel.New(workers)
		t := timeBest(reps, func() { sink = column.ParAggRange(p, vals, lo, hi, column.AggAll) })
		rep.Results = append(rep.Results, KernelResult{
			Kernel: "ParAggRange", Workers: workers,
			NsPerOp:      t * 1e9,
			ElemsPerSec:  float64(n) / t,
			SpeedupVsSer: serialAgg / t,
			Identical:    sink == want,
		})
		t = timeBest(reps, func() { sinkRes = column.ParSumRange(p, vals, lo, hi) })
		rep.Results = append(rep.Results, KernelResult{
			Kernel: "ParSumRange", Workers: workers,
			NsPerOp:      t * 1e9,
			ElemsPerSec:  float64(n) / t,
			SpeedupVsSer: serialSum / t,
			Identical:    sinkRes == wantSum,
		})
	}
	rep.Encodings = runEncodings(n, reps)
	return rep
}

// runEncodings measures the compressed storage layer on two data
// shapes: uniform values in [0, n) (the kernel benchmark's column —
// FOR-BP territory, ~log2(n) delta bits) and a low-cardinality column
// whose 1000 distinct values are spread over a 40-bit domain (dict
// territory: FOR-BP would need ~40 bits, codes need 10). Each segment
// scans the middle half of its value domain under both aggregate masks
// and is compared against the raw kernel for time and for answer bits.
func runEncodings(n, reps int) []EncodingResult {
	rng := rand.New(rand.NewSource(42))
	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = rng.Int63n(int64(n))
	}
	drng := rand.New(rand.NewSource(43))
	dictVals := make([]int64, 1000)
	for i := range dictVals {
		dictVals[i] = drng.Int63n(1 << 40)
	}
	skewed := make([]int64, n)
	for i := range skewed {
		skewed[i] = dictVals[drng.Intn(len(dictVals))]
	}

	datasets := []struct {
		name string
		vals []int64
	}{{"uniform", uniform}, {"skewed_lowcard", skewed}}
	masks := []struct {
		name string
		aggs column.Aggregates
	}{
		{"sum_count", column.AggSum | column.AggCount},
		{"all", column.AggAll},
	}
	modes := []struct {
		name string
		mode encode.Mode
	}{
		{"forbp", encode.ModeFORBP},
		{"dict", encode.ModeDict},
		{"auto", encode.ModeAuto},
	}

	var out []EncodingResult
	var sink column.Agg
	for _, ds := range datasets {
		mn, mx := column.MinMax(ds.vals)
		lo := mn + (mx-mn)/4
		hi := mn + 3*(mx-mn)/4
		for _, m := range masks {
			want := column.AggRange(ds.vals, lo, hi, m.aggs)
			rawT := timeBest(reps, func() { sink = column.AggRange(ds.vals, lo, hi, m.aggs) })
			for _, md := range modes {
				seg, err := encode.New(ds.vals, mn, mx, md.mode)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				t := timeBest(reps, func() { sink = seg.AggRange(lo, hi, m.aggs) })
				out = append(out, EncodingResult{
					Data: ds.name, Encoding: md.name, Kind: seg.Kind().String(),
					Aggs: m.name, N: n,
					WidthBits:        int(seg.Width()),
					BytesPerRow:      seg.BytesPerRow(),
					RawBytesPerRow:   8,
					CompressionRatio: 8 / seg.BytesPerRow(),
					ResidentMB:       float64(seg.SizeBytes()) / (1 << 20),
					RawResidentMB:    float64(n) * 8 / (1 << 20),
					ScanNsPerOp:      t * 1e9,
					RawScanNsPerOp:   rawT * 1e9,
					ScanPenaltyVsRaw: t/rawT - 1,
					Identical:        sink == want,
				})
			}
		}
	}
	return out
}

func runConvergence(n, maxQueries int, delta float64) convergenceReport {
	rep := convergenceReport{Host: host(), Timestamp: time.Now().UTC().Format(time.RFC3339)}
	strategies := []progidx.Strategy{
		progidx.StrategyQuicksort,
		progidx.StrategyRadixMSD,
		progidx.StrategyBucketsort,
		progidx.StrategyRadixLSD,
	}
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(int64(n))
	}
	type qr struct{ lo, hi int64 }
	qrs := make([]qr, maxQueries)
	qrng := rand.New(rand.NewSource(8))
	for i := range qrs {
		a := qrng.Int63n(int64(n))
		qrs[i] = qr{a, a + qrng.Int63n(int64(n)/10)}
	}

	workerSets := []int{1, runtime.GOMAXPROCS(0)}
	if workerSets[1] == 1 {
		workerSets = workerSets[:1] // single-core host: nothing to compare
	}
	serialSums := map[progidx.Strategy]int64{}
	for _, s := range strategies {
		for _, workers := range workerSets {
			idx := progidx.MustNew(vals, progidx.Options{Strategy: s, Delta: delta, Workers: workers})
			res := ConvergenceResult{
				Strategy: s.String(), Workers: workers, N: n, Delta: delta, ConvergedAt: -1,
			}
			var finalSum int64
			for i := 0; i < maxQueries; i++ {
				start := time.Now()
				ans, err := idx.Execute(progidx.Request{Pred: progidx.Range(qrs[i].lo, qrs[i].hi)})
				dt := time.Since(start).Seconds()
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				res.CumulativeSec += dt
				if i == 0 {
					res.FirstQueryMs = dt * 1000
				}
				if ms := dt * 1000; ms > res.MaxQueryMs {
					res.MaxQueryMs = ms
				}
				finalSum += ans.Sum
				res.Queries = i + 1
				if res.ConvergedAt < 0 && idx.Converged() {
					res.ConvergedAt = i + 1
				}
			}
			res.MeanQueryMs = res.CumulativeSec / float64(res.Queries) * 1000
			res.FinalSum = finalSum
			if workers == 1 {
				serialSums[s] = finalSum
				res.FinalSumAgrees = true
			} else {
				res.FinalSumAgrees = finalSum == serialSums[s]
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}

// FsyncResult is one WAL append-throughput measurement under a fsync
// policy: frames of ValuesPerFrame rows appended, one Sync every
// FramesPerSync frames (mirroring the scheduler's one-fsync-per-
// admission-batch amortization; under "always" each frame self-syncs
// and the explicit Sync is a no-op).
type FsyncResult struct {
	Policy         string  `json:"policy"`
	ValuesPerFrame int     `json:"values_per_frame"`
	FramesPerSync  int     `json:"frames_per_sync"`
	Frames         int     `json:"frames"`
	RowsPerSec     float64 `json:"rows_per_sec"`
	MBPerSec       float64 `json:"mb_per_sec"`
}

// RecoveryResult is one boot-from-datadir measurement: a base table
// snapshotted at BaseRows, then TailFrames WAL frames appended after
// the last checkpoint, then the store reopened cold.
type RecoveryResult struct {
	BaseRows     int     `json:"base_rows"`
	TailFrames   int     `json:"tail_frames"`
	TailRows     int     `json:"tail_rows"`
	ScanMs       float64 `json:"store_recover_ms"`   // manifest + snapshot read + WAL-tail frame decode
	RebuildMs    float64 `json:"catalog_rebuild_ms"` // index rebuild + tail append + progress redrive
	TotalMs      float64 `json:"total_ms"`
	AnswersMatch bool    `json:"answers_match_oracle"`
}

// SnapshotResult is one checkpoint write: Rows serialized, checksummed
// and fsynced. Amortization reading: a snapshot costing WriteMs spares
// every future boot the WAL-tail replay it truncates, so it pays for
// itself once the tail's replay cost (see RecoveryResult) exceeds it.
type SnapshotResult struct {
	Rows    int     `json:"rows"`
	WriteMs float64 `json:"write_ms"`
	FileMB  float64 `json:"file_mb"`
}

type durabilityReport struct {
	Host       Host             `json:"host"`
	Timestamp  string           `json:"timestamp"`
	Fsync      []FsyncResult    `json:"append_throughput"`
	Recoveries []RecoveryResult `json:"recovery"`
	Snapshots  []SnapshotResult `json:"snapshots"`
}

// runDurability measures the durability subsystem end to end in a
// temporary directory: append throughput under the three fsync
// policies, cold-boot recovery time as the uncheckpointed WAL tail
// grows, and snapshot write cost vs table size.
func runDurability(baseRows int) durabilityReport {
	rep := durabilityReport{Host: host(), Timestamp: time.Now().UTC().Format(time.RFC3339)}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	root, err := os.MkdirTemp("", "bench-durable-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(root)

	// Append throughput. 64 rows per frame is the loadgen-ish batch
	// size; 8 frames per sync mirrors a scheduler admission batch.
	const valuesPerFrame, framesPerSync, frames = 64, 8, 1024
	batch := make([]int64, valuesPerFrame)
	for i := range batch {
		batch[i] = int64(i)
	}
	for _, policy := range []durable.SyncPolicy{durable.SyncAlways, durable.SyncBatch, durable.SyncOff} {
		dir := filepath.Join(root, "fsync-"+policy.String())
		store, err := durable.Open(dir, policy)
		if err != nil {
			fail(err)
		}
		tl, err := store.Create("bench", durable.TableMeta{Strategy: "PQ"}, 0, nil)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		for f := 0; f < frames; f++ {
			if _, err := tl.Append(batch); err != nil {
				fail(err)
			}
			if (f+1)%framesPerSync == 0 {
				if err := tl.Sync(); err != nil {
					fail(err)
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		rows := frames * valuesPerFrame
		rep.Fsync = append(rep.Fsync, FsyncResult{
			Policy: policy.String(), ValuesPerFrame: valuesPerFrame,
			FramesPerSync: framesPerSync, Frames: frames,
			RowsPerSec: float64(rows) / elapsed,
			MBPerSec:   float64(rows) * 8 / elapsed / (1 << 20),
		})
		store.Close()
	}

	// Recovery time vs WAL-tail length: base table checkpointed, then
	// tailFrames appends land after the checkpoint, then cold boot.
	rng := rand.New(rand.NewSource(21))
	baseVals := make([]int64, baseRows)
	for i := range baseVals {
		baseVals[i] = rng.Int63n(int64(baseRows))
	}
	const tailValuesPerFrame = 16
	for _, tailFrames := range []int{0, 256, 2048, 16384} {
		dir := filepath.Join(root, fmt.Sprintf("recover-%d", tailFrames))
		store, err := durable.Open(dir, durable.SyncOff)
		if err != nil {
			fail(err)
		}
		c := catalog.NewDurable(store)
		tbl, err := c.Load("bench", baseVals, catalog.Options{Strategy: progidx.StrategyQuicksort, Delta: 0.25})
		if err != nil {
			fail(err)
		}
		expect := append([]int64(nil), baseVals...)
		for f := 0; f < tailFrames; f++ {
			tail := make([]int64, tailValuesPerFrame)
			for i := range tail {
				// Outside the base domain so the oracle check below can
				// see lost or duplicated tail rows, not just base rows.
				tail[i] = 2*int64(baseRows) + int64(f*tailValuesPerFrame+i)
			}
			if err := tbl.Append(tail); err != nil {
				fail(err)
			}
			expect = append(expect, tail...)
		}
		store.Close()

		store2, err := durable.Open(dir, durable.SyncOff)
		if err != nil {
			fail(err)
		}
		scanStart := time.Now()
		recs, recErrs, err := store2.Recover()
		scanMs := time.Since(scanStart).Seconds() * 1000
		if err != nil {
			fail(err)
		}
		if len(recErrs) > 0 || len(recs) != 1 {
			fail(fmt.Errorf("recovery: %d tables, warnings %v", len(recs), recErrs))
		}
		c2 := catalog.NewDurable(store2)
		rebuildStart := time.Now()
		tbl2, err := c2.LoadRecovered(recs[0])
		rebuildMs := time.Since(rebuildStart).Seconds() * 1000
		if err != nil {
			fail(err)
		}
		lo, hi := int64(baseRows)/4, 2*int64(baseRows)+int64(tailFrames*tailValuesPerFrame)
		ans, err := tbl2.Index().Execute(progidx.Request{Pred: progidx.Range(lo, hi)})
		if err != nil {
			fail(err)
		}
		want := column.AggRangeBranching(expect, lo, hi)
		rep.Recoveries = append(rep.Recoveries, RecoveryResult{
			BaseRows: baseRows, TailFrames: tailFrames,
			TailRows: tailFrames * tailValuesPerFrame,
			ScanMs:   scanMs, RebuildMs: rebuildMs, TotalMs: scanMs + rebuildMs,
			AnswersMatch: ans.Sum == want.Sum && ans.Count == want.Count,
		})
		store2.Close()
	}

	// Snapshot write cost vs table size.
	for _, rows := range []int{baseRows / 4, baseRows, 4 * baseRows} {
		dir := filepath.Join(root, fmt.Sprintf("snap-%d", rows))
		store, err := durable.Open(dir, durable.SyncBatch)
		if err != nil {
			fail(err)
		}
		tl, err := store.Create("bench", durable.TableMeta{Strategy: "PQ"}, 0, nil)
		if err != nil {
			fail(err)
		}
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(i)
		}
		if _, err := tl.Append(vals); err != nil {
			fail(err)
		}
		start := time.Now()
		if err := tl.WriteCheckpoint(durable.Checkpoint{
			Seq: tl.LastSeq(), Rows: vals, Progress: 1, Converged: true,
			Meta: durable.TableMeta{Strategy: "PQ"},
		}); err != nil {
			fail(err)
		}
		writeMs := time.Since(start).Seconds() * 1000
		rep.Snapshots = append(rep.Snapshots, SnapshotResult{
			Rows: rows, WriteMs: writeMs,
			FileMB: float64(rows) * 8 / (1 << 20),
		})
		store.Close()
	}
	return rep
}

// PlannerResult is one driver policy's run over the shared composite
// workload: the planner's own choice, or one pinned driving column
// (ExplainConj forceDriver — the worst of these is the baseline the
// planner must beat).
type PlannerResult struct {
	Driver            string  `json:"driver"` // "planner" or a pinned column
	Queries           int     `json:"queries"`
	MeanQueryMs       float64 `json:"mean_query_ms"`
	TotalSec          float64 `json:"total_seconds"`
	ScannedBlocksMean float64 `json:"scanned_blocks_mean"`
	PrunedBlocksMean  float64 `json:"pruned_blocks_mean"`
	SlowdownVsPlanner float64 `json:"slowdown_vs_planner"`
	AnswersMatch      bool    `json:"answers_match_oracle"`
}

type plannerReport struct {
	Host      Host     `json:"host"`
	Timestamp string   `json:"timestamp"`
	N         int      `json:"n"`
	Columns   []string `json:"columns"`
	Encoding  string   `json:"encoding"`
	// TargetSelectivity is the workload design point; ActualSelectivity
	// is the measured mean fraction of rows matching the whole
	// conjunction.
	TargetSelectivity float64 `json:"target_selectivity"`
	ActualSelectivity float64 `json:"actual_selectivity_mean"`
	// PlannerPicks histograms which column the planner chose to drive.
	PlannerPicks map[string]int  `json:"planner_driver_picks"`
	Results      []PlannerResult `json:"results"`
	// SpeedupVsWorst is mean_query_ms of the slowest pinned driver over
	// the planner's mean — the headline driver-choice payoff.
	SpeedupVsWorst float64 `json:"speedup_vs_worst_column"`
}

// runPlanner measures what picking the driving column is worth on the
// correlated three-column dataset: the workload is a 0.1%-selectivity
// range on the correlated column b conjoined with a ~99%-pass filter
// on the uniform column c, aggregating over the clustered a. The same
// queries run under the planner and under each pinned driver; the
// FOR-BP encoding makes block decodes real work, so driving by the
// unselective column (which touches every involved column in every
// surviving block) pays its full price.
func runPlanner(n, queries int) plannerReport {
	cols := []string{"a", "b", "c"}
	rep := plannerReport{
		Host: host(), Timestamp: time.Now().UTC().Format(time.RFC3339),
		N: n, Columns: cols, Encoding: "forbp",
		TargetSelectivity: 0.001,
		PlannerPicks:      map[string]int{},
	}
	flat := data.MultiColumn(n, len(cols), 1234)
	tbl, err := plan.New("bench", cols, flat, progidx.Options{
		Strategy: progidx.StrategyQuicksort, Delta: 0.25,
		Encoding: progidx.EncodingFORBP,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	width := int64(float64(n) * rep.TargetSelectivity)
	if width < 1 {
		width = 1
	}
	cMin := int64(n / 100)
	qrng := rand.New(rand.NewSource(17))
	conjs := make([]query.Conjunction, queries)
	wantSum := make([]int64, queries)
	wantCount := make([]int64, queries)
	for i := range conjs {
		lo := qrng.Int63n(int64(n))
		conjs[i] = query.Conjunction{
			Preds: []query.ColPredicate{
				{Col: "b", Pred: progidx.Range(lo, lo+width)},
				{Col: "c", Pred: progidx.AtLeast(cMin)},
			},
			Target: "a",
			Aggs:   progidx.Sum | progidx.Count,
		}
		for r := 0; r < n; r++ {
			b, c := flat[r*3+1], flat[r*3+2]
			if b >= lo && b <= lo+width && c >= cMin {
				wantSum[i] += flat[r*3]
				wantCount[i]++
			}
		}
	}

	var matchedRows int64
	for _, driver := range []string{"planner", "b", "c"} {
		force := driver
		if driver == "planner" {
			force = ""
		}
		res := PlannerResult{Driver: driver, Queries: queries, AnswersMatch: true}
		var scanned, pruned int64
		for i, c := range conjs {
			start := time.Now()
			ans, ch, err := tbl.ExplainConj(c, force)
			res.TotalSec += time.Since(start).Seconds()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if ans.Sum != wantSum[i] || ans.Count != wantCount[i] {
				res.AnswersMatch = false
			}
			scanned += int64(ch.ScannedBlocks)
			pruned += int64(ch.PrunedBlocks)
			if driver == "planner" {
				rep.PlannerPicks[ch.Driver]++
				matchedRows += int64(ch.MatchedRows)
			}
		}
		res.MeanQueryMs = res.TotalSec / float64(queries) * 1000
		res.ScannedBlocksMean = float64(scanned) / float64(queries)
		res.PrunedBlocksMean = float64(pruned) / float64(queries)
		rep.Results = append(rep.Results, res)
	}
	rep.ActualSelectivity = float64(matchedRows) / float64(queries) / float64(n)

	planner := rep.Results[0].MeanQueryMs
	worst := planner
	for _, r := range rep.Results[1:] {
		if r.MeanQueryMs > worst {
			worst = r.MeanQueryMs
		}
	}
	for i := range rep.Results {
		if planner > 0 {
			rep.Results[i].SlowdownVsPlanner = rep.Results[i].MeanQueryMs / planner
		}
	}
	if planner > 0 {
		rep.SpeedupVsWorst = worst / planner
	}
	return rep
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

func main() {
	var (
		n       = flag.Int("n", 10_000_000, "kernel benchmark column size")
		convN   = flag.Int("convn", 1_000_000, "convergence benchmark column size")
		queries = flag.Int("queries", 200, "convergence benchmark query count")
		delta   = flag.Float64("delta", 0.25, "convergence benchmark delta")
		reps    = flag.Int("reps", 3, "timing repetitions (best-of)")
		shardN  = flag.Int("shardn", 2_000_000, "shard sweep column size")
		shardQ  = flag.Int("shardqueries", 96, "shard sweep queries per configuration")
		durN    = flag.Int("durn", 1_000_000, "durability suite base table size")
		planN   = flag.Int("plannern", 2_000_000, "planner suite table size (rows × 3 columns)")
		planQ   = flag.Int("plannerqueries", 96, "planner suite queries per driver policy")
		outDir  = flag.String("out", ".", "output directory for the JSON artifacts")
		suite   = flag.String("suite", "all", "kernels|convergence|shards|durability|planner|all")
	)
	flag.Parse()

	if runtime.NumCPU() == 1 {
		fmt.Println("note: single-CPU host — parallel speedup figures in these runs are not meaningful; re-run on a multi-core machine for real numbers")
	}

	if *suite == "all" || *suite == "kernels" {
		rep := runKernels(*n, *reps)
		writeJSON(filepath.Join(*outDir, "BENCH_kernels.json"), rep)
		for _, r := range rep.Results {
			fmt.Printf("  %-12s workers=%d  %8.2f ms/op  %6.2fx  identical=%v\n",
				r.Kernel, r.Workers, r.NsPerOp/1e6, r.SpeedupVsSer, r.Identical)
		}
		for _, r := range rep.Encodings {
			fmt.Printf("  %-14s %-5s→%-5s %-9s %4.2f B/row (%4.2fx)  penalty=%+6.1f%%  identical=%v\n",
				r.Data, r.Encoding, r.Kind, r.Aggs, r.BytesPerRow, r.CompressionRatio,
				r.ScanPenaltyVsRaw*100, r.Identical)
		}
	}
	if *suite == "all" || *suite == "convergence" {
		rep := runConvergence(*convN, *queries, *delta)
		writeJSON(filepath.Join(*outDir, "BENCH_convergence.json"), rep)
		for _, r := range rep.Results {
			fmt.Printf("  %-5s workers=%d  converged_at=%-3d cumulative=%7.3fs  mean=%6.3fms  agrees=%v\n",
				r.Strategy, r.Workers, r.ConvergedAt, r.CumulativeSec, r.MeanQueryMs, r.FinalSumAgrees)
		}
	}
	if *suite == "all" || *suite == "shards" {
		rep := runShards(*shardN, *shardQ, *delta)
		writeJSON(filepath.Join(*outDir, "BENCH_shards.json"), rep)
		for _, r := range rep.Results {
			fmt.Printf("  shards=%-2d sel=%-6g mean=%7.3fms  speedup=%5.2fx  pruned=%d/%d zero_work=%v  match=%v\n",
				r.Shards, r.Selectivity, r.MeanQueryMs, r.SpeedupVsUnsharded,
				r.PrunedShards, r.Shards, r.PrunedZeroWork, r.AnswersMatch)
		}
	}
	if *suite == "all" || *suite == "planner" {
		rep := runPlanner(*planN, *planQ)
		writeJSON(filepath.Join(*outDir, "BENCH_planner.json"), rep)
		for _, r := range rep.Results {
			fmt.Printf("  driver=%-8s mean=%7.3fms  slowdown=%5.2fx  blocks=%.0f scanned/%.0f pruned  match=%v\n",
				r.Driver, r.MeanQueryMs, r.SlowdownVsPlanner,
				r.ScannedBlocksMean, r.PrunedBlocksMean, r.AnswersMatch)
		}
		fmt.Printf("  planner picks=%v  actual_sel=%.5f  speedup_vs_worst=%.2fx\n",
			rep.PlannerPicks, rep.ActualSelectivity, rep.SpeedupVsWorst)
	}
	if *suite == "all" || *suite == "durability" {
		rep := runDurability(*durN)
		writeJSON(filepath.Join(*outDir, "BENCH_durability.json"), rep)
		for _, r := range rep.Fsync {
			fmt.Printf("  fsync=%-6s %9.0f rows/s  %7.2f MB/s  (%d×%d rows, sync every %d frames)\n",
				r.Policy, r.RowsPerSec, r.MBPerSec, r.Frames, r.ValuesPerFrame, r.FramesPerSync)
		}
		for _, r := range rep.Recoveries {
			fmt.Printf("  recover tail=%-6d %8.1fms scan  %8.1fms rebuild  %8.1fms total  match=%v\n",
				r.TailFrames, r.ScanMs, r.RebuildMs, r.TotalMs, r.AnswersMatch)
		}
		for _, r := range rep.Snapshots {
			fmt.Printf("  snapshot rows=%-8d %8.1fms  %7.2f MB\n", r.Rows, r.WriteMs, r.FileMB)
		}
	}
}
