// Command experiments regenerates the tables and figures of the
// paper's evaluation section. Each experiment prints an aligned table
// to stdout; figures backed by per-query series additionally write CSV
// files when -out is given.
//
// Usage:
//
//	experiments -exp all                     # everything, default scale
//	experiments -exp fig7                    # one experiment
//	experiments -exp table2 -skyn 10000000   # paper-ish scale
//	experiments -exp fig9 -out results/      # write per-query CSVs
//	experiments -exp all -verify             # cross-check every answer
//
// Experiments: fig7, fig8, fig9, fig10, table2, tables345, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig7|fig8|fig9|fig10|table2|tables345|all")
		skyN      = flag.Int("skyn", 0, "SkyServer column size (default from config)")
		synthN    = flag.Int("n", 0, "synthetic column size")
		largeN    = flag.Int("largen", 0, "large-block column size (the paper's 10^9 stand-in)")
		queries   = flag.Int("queries", 0, "queries per workload")
		budget    = flag.Float64("budget", 0, "adaptive budget as fraction of scan cost (default 0.2)")
		seed      = flag.Int64("seed", 0, "data/workload seed (default 42)")
		verify    = flag.Bool("verify", false, "verify every answer against a full scan")
		calibrate = flag.Bool("calibrate", false, "calibrate cost-model constants on this machine")
		outDir    = flag.String("out", "", "directory for per-query CSV series")
		csvMode   = flag.Bool("csv", false, "print tables as CSV instead of aligned text")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *skyN > 0 {
		cfg.SkyN = *skyN
	}
	if *synthN > 0 {
		cfg.SynthN = *synthN
	}
	if *largeN > 0 {
		cfg.LargeN = *largeN
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Verify = *verify
	cfg.Calibrate = *calibrate

	if err := run(*exp, cfg, *outDir, *csvMode); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiments.Config, outDir string, csvMode bool) error {
	emit := func(t *harness.Table) {
		if csvMode {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	writeCSVs := func(csvs map[string]string) error {
		if outDir == "" {
			return nil
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		for name, content := range csvs {
			if err := os.WriteFile(filepath.Join(outDir, name), []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", filepath.Join(outDir, name))
		}
		return nil
	}
	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("fig7") {
		ran = true
		if err := timed("fig7", func() error {
			t, err := experiments.Fig7(cfg)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig8") {
		ran = true
		if err := timed("fig8", func() error {
			t, csvs, err := experiments.Fig8(cfg)
			if err != nil {
				return err
			}
			emit(t)
			return writeCSVs(csvs)
		}); err != nil {
			return err
		}
	}
	if want("fig9") {
		ran = true
		if err := timed("fig9", func() error {
			t, csvs, err := experiments.Fig9(cfg)
			if err != nil {
				return err
			}
			emit(t)
			return writeCSVs(csvs)
		}); err != nil {
			return err
		}
	}
	if want("fig10") {
		ran = true
		if err := timed("fig10", func() error {
			t, csvs, err := experiments.Fig10(cfg)
			if err != nil {
				return err
			}
			emit(t)
			return writeCSVs(csvs)
		}); err != nil {
			return err
		}
	}
	if want("table2") {
		ran = true
		if err := timed("table2", func() error {
			t, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("tables345") || exp == "table3" || exp == "table4" || exp == "table5" {
		ran = true
		if err := timed("tables345", func() error {
			t3, t4, t5, err := experiments.Tables345(cfg)
			if err != nil {
				return err
			}
			switch exp {
			case "table3":
				emit(t3)
			case "table4":
				emit(t4)
			case "table5":
				emit(t5)
			default:
				emit(t3)
				emit(t4)
				emit(t5)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
