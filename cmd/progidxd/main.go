// Command progidxd is the progressive-index serving daemon: it exposes
// the table catalog and the per-table batching/idle-refining schedulers
// of internal/server over HTTP/JSON.
//
// Usage:
//
//	progidxd                          # listen on :7171
//	progidxd -addr 127.0.0.1:0        # ephemeral port (printed, and
//	                                  # written to -addrfile if set)
//	progidxd -preload demo:1000000    # load a uniform demo table at boot
//
// Load a table and query it:
//
//	curl -s localhost:7171/tables -d '{"name":"demo","generate":{"n":1000000,"seed":42},"options":{"strategy":"PQ","delta":0.25}}'
//	curl -s localhost:7171/tables/demo/query -d '{"pred":{"kind":"range","lo":1000,"hi":50000},"aggs":["sum","count","avg"]}'
//	curl -s localhost:7171/stats
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight requests finish (up to a timeout), then
// the per-table schedulers stop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/data"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":7171", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile = flag.String("addrfile", "", "write the resolved listen address to this file (for scripts wrapping an ephemeral port)")
		queue    = flag.Int("queue", 0, "per-table admission queue depth (0 = default)")
		maxBatch = flag.Int("maxbatch", 0, "max requests amortized into one indexing step (0 = default)")
		preload  = flag.String("preload", "", "comma-separated name:rows tables to load at boot with uniform data, e.g. demo:1000000")
		grace    = flag.Duration("grace", 5*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	srv := server.New(server.Config{QueueDepth: *queue, MaxBatch: *maxBatch})
	if err := preloadTables(srv, *preload); err != nil {
		fmt.Fprintln(os.Stderr, "progidxd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progidxd:", err)
		os.Exit(1)
	}
	resolved := ln.Addr().String()
	fmt.Printf("progidxd listening on %s\n", resolved)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("progidxd: shutting down")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
		return
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "progidxd: shutdown:", err)
	}
	srv.Close()
}

// preloadTables loads "name:rows" specs with deterministic uniform data
// (seed = 42) and default options, so a demo instance is queryable the
// moment it prints its listen address.
func preloadTables(srv *server.Server, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, rows, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return fmt.Errorf("bad -preload entry %q (want name:rows)", part)
		}
		n, err := strconv.Atoi(rows)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -preload rows in %q", part)
		}
		if _, err := srv.Load(name, data.Uniform(n, 42), catalog.Options{}); err != nil {
			return err
		}
		fmt.Printf("progidxd: preloaded table %q (%d rows)\n", name, n)
	}
	return nil
}
