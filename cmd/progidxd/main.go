// Command progidxd is the progressive-index serving daemon: it exposes
// the table catalog and the per-table batching/idle-refining schedulers
// of internal/server over HTTP/JSON.
//
// Usage:
//
//	progidxd                          # listen on :7171, in-memory only
//	progidxd -addr 127.0.0.1:0        # ephemeral port (printed, and
//	                                  # written to -addrfile if set)
//	progidxd -preload demo:1000000    # load a uniform demo table at boot
//	progidxd -datadir /var/lib/pidx   # durable: WAL + snapshots, tables
//	                                  # recovered on restart
//
// Load a table and query it:
//
//	curl -s localhost:7171/tables -d '{"name":"demo","generate":{"n":1000000,"seed":42},"options":{"strategy":"PQ","delta":0.25}}'
//	curl -s localhost:7171/tables/demo/query -d '{"pred":{"kind":"range","lo":1000,"hi":50000},"aggs":["sum","count","avg"]}'
//	curl -s localhost:7171/stats
//
// With -datadir set, appends are written to a per-table WAL before
// they are acknowledged (fsync policy per -fsync), index state is
// snapshotted on the -snapshot-interval cadence, and a restart with
// the same -datadir recovers every table: /healthz reports
// starting/recovering (503) until replay finishes, then ready.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight requests finish (up to a timeout), then
// the per-table admission queues drain — every queued append is
// flushed to the WAL and acknowledged, or rejected explicitly — and
// each durable table gets a final checkpoint so the next boot replays
// no WAL at all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":7171", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile = flag.String("addrfile", "", "write the resolved listen address to this file (for scripts wrapping an ephemeral port)")
		queue    = flag.Int("queue", 0, "per-table admission queue depth (0 = default)")
		maxBatch = flag.Int("maxbatch", 0, "max requests amortized into one indexing step (0 = default)")
		preload  = flag.String("preload", "", "comma-separated name:rows tables to load at boot with uniform data, e.g. demo:1000000")
		grace    = flag.Duration("grace", 5*time.Second, "graceful shutdown timeout")
		datadir  = flag.String("datadir", "", "durability directory (empty = in-memory only; tables there are recovered on boot)")
		fsync    = flag.String("fsync", "batch", "WAL fsync policy: always (per append), batch (per admission batch), off")
		snapIvl  = flag.Duration("snapshot-interval", 0, "background snapshot cadence for durable tables (0 = default 30s)")
		deadline = flag.Duration("default-deadline", 0, "default per-query deadline clamping the indexing budget (0 = none; ?deadline_ms= overrides)")

		faultSpec = flag.String("fault", "", "fault-injection spec for chaos testing, e.g. 'wal.sync=error,after=100,count=3;snapshot.write=latency,d=50ms' (requires -datadir)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault injector's deterministic RNG")

		debugAddr   = flag.String("debug-addr", "", "separate listener exposing net/http/pprof (empty = disabled)")
		slowQuery   = flag.Duration("slow-query", 0, "slow-query log threshold (0 = default 250ms, negative = disabled)")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		traceSample = flag.Int("trace-sample", 0, "trace one in every N queries into /debug/traces (0 = off; ?trace=1 always works)")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "progidxd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}

	var store *durable.Store
	if *datadir != "" {
		policy, err := durable.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
		fs := fault.OS()
		if *faultSpec != "" {
			rules, err := fault.ParseSpec(*faultSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "progidxd:", err)
				os.Exit(1)
			}
			in := fault.NewInjector(*faultSeed, rules...)
			fs = fault.Injecting(fs, in)
			fmt.Printf("progidxd: fault injection armed (seed %d): %s\n", *faultSeed, in)
		}
		store, err = durable.OpenFS(*datadir, policy, fs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
	} else if *faultSpec != "" {
		fmt.Fprintln(os.Stderr, "progidxd: -fault requires -datadir (faults inject into the durability layer)")
		os.Exit(1)
	}
	srv := server.New(server.Config{
		QueueDepth:       *queue,
		MaxBatch:         *maxBatch,
		Store:            store,
		SnapshotInterval: *snapIvl,
		TraceSample:      *traceSample,
		SlowQuery:        *slowQuery,
		DefaultDeadline:  *deadline,
		Logger:           logger,
	})

	if *debugAddr != "" {
		// pprof lives on its own listener so the profiling surface is
		// never exposed on the serving address by accident.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
		fmt.Printf("progidxd debug (pprof) listening on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "progidxd: debug listener:", err)
			}
		}()
	}

	// Serve before recovering: /healthz answers starting/recovering
	// (503) while WAL replay rebuilds the tables, so clients can poll
	// for readiness instead of getting connection refused.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progidxd:", err)
		os.Exit(1)
	}
	resolved := ln.Addr().String()
	fmt.Printf("progidxd listening on %s\n", resolved)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	warnings, err := srv.Recover()
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "progidxd: recovery warning:", w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "progidxd:", err)
		os.Exit(1)
	}
	if store != nil {
		if n := len(srv.Catalog().List()); n > 0 {
			fmt.Printf("progidxd: recovered %d table(s) from %s\n", n, *datadir)
		}
	}
	if err := preloadTables(srv, *preload); err != nil {
		fmt.Fprintln(os.Stderr, "progidxd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("progidxd: shutting down")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "progidxd:", err)
			os.Exit(1)
		}
		return
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "progidxd: shutdown:", err)
	}
	// Drain the admission queues (flushing queued appends to the WAL
	// and acking them) and checkpoint every durable table; for an
	// in-memory server this degrades to a plain drain-and-stop.
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "progidxd: shutdown:", err)
		os.Exit(1)
	}
}

// preloadTables loads "name:rows" specs with deterministic uniform data
// (seed = 42) and default options, so a demo instance is queryable the
// moment it prints its listen address. Names that already exist —
// typically recovered from -datadir — are left alone, so restarting a
// durable daemon with the same -preload does not fail or double-load.
func preloadTables(srv *server.Server, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, rows, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return fmt.Errorf("bad -preload entry %q (want name:rows)", part)
		}
		n, err := strconv.Atoi(rows)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -preload rows in %q", part)
		}
		if _, exists := srv.Catalog().Get(name); exists {
			fmt.Printf("progidxd: table %q already recovered, skipping preload\n", name)
			continue
		}
		if _, err := srv.Load(name, data.Uniform(n, 42), catalog.Options{}); err != nil {
			return err
		}
		fmt.Printf("progidxd: preloaded table %q (%d rows)\n", name, n)
	}
	return nil
}
