// Command loadgen drives a running progidxd with N concurrent query
// sessions against one table, verifying every server answer against
// the library executed locally (the data is generated from a shared
// seed, so client and server hold identical columns). It is both the
// demo client for the serving layer and the CI end-to-end smoke test:
// it exits non-zero on any transport error or answer mismatch.
//
// With -writers > 0 it runs a mixed reader/writer workload: writer
// sessions ingest batches through POST /tables/{name}/append and check
// the server against a growing oracle. Every writer owns a value range
// disjoint from the loaded data and from the other writers, so exact
// answers stay checkable for everyone while the table grows: readers
// keep verifying the loaded domain (invariant under appends), and each
// writer verifies the rows it has appended so far (count and closed-
// form sum over its private range — nobody else writes there).
//
// With -columns >= 2 it exercises the multi-column surface instead:
// the table is loaded from the correlated generator with a c0..c{k-1}
// schema, reader sessions issue composite queries (a range on the
// clustered c0 plus extra predicates on the other columns, aggregated
// over a random target column) and verify each answer against a
// brute-force scan of the locally regenerated rows, and writers append
// whole tuples through the Rows form. Writer tuples carry one strictly
// increasing value replicated across every column, so the closed-form
// count/sum checks work unchanged — issued as composite queries so the
// planner path, not the legacy one, serves them.
//
// With -verify-only it loads nothing: it expects the table to already
// exist on the server (recovered from a durable -datadir after a crash
// or restart) with the same -n/-seed/-writers/-appends/-append-batch a
// previous run used, rebuilds the identical local oracle, and verifies
// reader queries plus every writer's closed-form range — the crash-
// recovery end of the CI smoke test.
//
// Before doing anything it polls /healthz until the server reports
// ready (a durable daemon answers 503 while it replays its WAL), so it
// can be pointed at a just-started progidxd without racing recovery.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7171 -n 200000 -sessions 8 -queries 50
//	loadgen -addr 127.0.0.1:7171 -n 200000 -sessions 8 -writers 2 -shards 4
//	loadgen -addr 127.0.0.1:7171 -n 200000 -writers 2 -verify-only
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7171", "progidxd address (host:port)")
		table      = flag.String("table", "loadgen", "table name to create and query")
		n          = flag.Int("n", 200_000, "rows in the generated table")
		seed       = flag.Int64("seed", 7, "data generator seed (shared with the server)")
		strategy   = flag.String("strategy", "PQ", "index strategy abbreviation")
		delta      = flag.Float64("delta", 0.25, "indexing fraction per query")
		shards     = flag.Int("shards", 0, "range-partition the table into this many index shards (0 = unsharded)")
		columns    = flag.Int("columns", 1, "columns per row (>= 2 loads a multi-column table and issues composite queries)")
		encoding   = flag.String("encoding", "", "columnar encoding for the table (raw, auto, forbp, dict; empty = raw)")
		sessions   = flag.Int("sessions", 8, "concurrent query sessions")
		queries    = flag.Int("queries", 50, "queries per session")
		writers    = flag.Int("writers", 0, "concurrent writer sessions appending rows while readers query")
		appends    = flag.Int("appends", 10, "append batches per writer session")
		batchLen   = flag.Int("append-batch", 50, "rows per append batch")
		check      = flag.Bool("check", true, "verify every answer against the local library oracle")
		keep       = flag.Bool("keep", false, "leave the table loaded when done")
		verifyOnly = flag.Bool("verify-only", false, "skip load and appends; verify an existing (recovered) table against the oracle for the same flags")
		waitReady  = flag.Duration("wait-ready", 30*time.Second, "poll /healthz until the server reports ready (0 = don't wait)")
		deadline   = flag.Int("deadline-ms", 0, "per-query deadline_ms sent with reader queries (0 = none)")
		retries    = flag.Int("retries", 8, "max retries when the server sheds a request with 429")
	)
	flag.Parse()
	maxRetries = *retries

	base := "http://" + *addr
	client := &http.Client{Timeout: 60 * time.Second}

	if err := waitForReady(client, base, *waitReady); err != nil {
		fatal("%v", err)
	}

	// Load the table server-side from the shared generator spec, and
	// build the local oracle over the identical rows. In verify-only
	// mode the table already exists server-side (recovered from a
	// durable datadir); only the local oracle is rebuilt.
	k := *columns
	if k < 1 {
		k = 1
	}
	mc := k > 1
	var (
		vals []int64 // single-column mode
		flat []int64 // multi-column mode: row-major tuples
	)
	if mc {
		flat = data.MultiColumn(*n, k, *seed)
	} else {
		vals = data.Uniform(*n, *seed)
	}
	if *verifyOnly {
		fmt.Printf("loadgen: verify-only against existing %q (%d loaded rows expected) on %s\n", *table, *n, *addr)
	} else {
		kind := "uniform"
		var schema []string
		if mc {
			kind = "correlated"
			schema = colNames(k)
		}
		loadBody := server.LoadRequest{
			Name:     *table,
			Generate: &server.GenerateSpec{Kind: kind, N: *n, Seed: *seed},
			Options:  &server.OptionsSpec{Strategy: *strategy, Delta: *delta, Shards: *shards, Encoding: *encoding, Columns: schema},
		}
		if err := postJSON(client, base+"/tables", loadBody, nil, http.StatusCreated); err != nil {
			fatal("load table: %v", err)
		}
		enc := *encoding
		if enc == "" {
			enc = "raw"
		}
		fmt.Printf("loadgen: loaded %q (%d rows × %d cols, %s, δ=%g, shards=%d, encoding=%s) on %s\n", *table, *n, k, *strategy, *delta, *shards, enc, *addr)
	}

	var oracle progidx.Index
	if *check && !mc {
		oracle = progidx.Synchronize(progidx.MustNew(vals, progidx.Options{Strategy: progidx.StrategyFullScan}))
	}

	var (
		wg           sync.WaitGroup
		mismatches   atomic.Uint64
		failures     atomic.Uint64
		latMu        sync.Mutex
		latencies    []time.Duration
		perSession   []sessionSummary
		batchSum     atomic.Uint64
		appendedRows atomic.Uint64
		writerChecks atomic.Uint64
	)
	writerMode := *writers > 0
	queryURL := base + "/tables/" + *table + "/query"
	if *deadline > 0 {
		queryURL += fmt.Sprintf("?deadline_ms=%d", *deadline)
	}
	start := time.Now()
	for g := 0; g < *sessions; g++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed*1000 + int64(session)))
			local := make([]time.Duration, 0, *queries)
			errs := 0
			for q := 0; q < *queries; q++ {
				var (
					req    progidx.Request
					preds  []mcPred
					target int
					wire   server.QueryRequest
				)
				if mc {
					preds, target, wire = mcRandomQuery(rng, int64(*n), k)
				} else {
					req, wire = randomQuery(rng, int64(*n), writerMode)
				}
				qs := time.Now()
				var resp server.QueryResponse
				err := postJSON(client, queryURL, wire, &resp, http.StatusOK)
				local = append(local, time.Since(qs))
				if err != nil {
					failures.Add(1)
					errs++
					fmt.Fprintf(os.Stderr, "loadgen: session %d query %d: %v\n", session, q, err)
					continue
				}
				batchSum.Add(uint64(resp.BatchSize))
				switch {
				case mc && *check && !mcMatches(flat, k, preds, target, resp):
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: session %d query %d: composite answer mismatch (%d predicates, target c%d)\n",
						session, q, len(preds), target)
				case !mc && oracle != nil && !matches(oracle, req, resp):
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: session %d query %d: answer mismatch for %v\n",
						session, q, req.Pred)
				}
			}
			sorted := append([]time.Duration(nil), local...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			sum := sessionSummary{id: session, errors: errs}
			if len(sorted) > 0 {
				sum.p50, sum.p99 = pct(sorted, 0.50), pct(sorted, 0.99)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			perSession = append(perSession, sum)
			latMu.Unlock()
		}(g)
	}
	// Writer sessions: each owns the value range [base, base+span) —
	// above the loaded domain (and the readers' bounded predicates) and
	// disjoint from every other writer — appending strictly increasing
	// values, so the rows it has written so far have a closed-form
	// count and sum it verifies after every batch. In verify-only mode
	// nothing is appended: a previous run wrote (and was acked for) the
	// full span, so the check runs once against the complete range.
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(writer int) {
			defer wg.Done()
			span := int64(*appends * *batchLen)
			wbase := 2*int64(*n) + int64(writer)*span
			if *verifyOnly {
				appendedRows.Add(uint64(span))
				if !*check {
					return
				}
				lo, hi := wbase, wbase+span-1
				var resp server.QueryResponse
				err := postJSON(client, base+"/tables/"+*table+"/query",
					writerRangeQuery(mc, k, lo, hi), &resp, http.StatusOK)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d verify: %v\n", writer, err)
					return
				}
				wantSum := span * (2*wbase + span - 1) / 2
				ok := resp.Count == span &&
					resp.Sum != nil && *resp.Sum == wantSum &&
					resp.Min != nil && *resp.Min == wbase &&
					resp.Max != nil && *resp.Max == wbase+span-1
				if !ok {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d: recovered range [%d,%d] mismatch: %+v\n",
						writer, lo, hi, resp)
				}
				writerChecks.Add(1)
				return
			}
			written := int64(0)
			for a := 0; a < *appends; a++ {
				batch := make([]int64, *batchLen)
				for i := range batch {
					batch[i] = wbase + written + int64(i)
				}
				// Multi-column tables ingest whole tuples: the writer's
				// value replicated across every column, so the closed-form
				// checks hold for any target column.
				areq := server.AppendRequest{Values: batch}
				if mc {
					rows := make([][]int64, len(batch))
					for i, v := range batch {
						row := make([]int64, k)
						for c := range row {
							row[c] = v
						}
						rows[i] = row
					}
					areq = server.AppendRequest{Rows: rows, Values: nil}
				}
				var ar server.AppendResponse
				if err := postJSON(client, base+"/tables/"+*table+"/append",
					areq, &ar, http.StatusOK); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d append %d: %v\n", writer, a, err)
					continue
				}
				written += int64(len(batch))
				appendedRows.Add(uint64(len(batch)))
				if !*check {
					continue
				}
				// Growing-oracle check: exactly the rows this writer has
				// appended live in its range, values wbase..wbase+written-1.
				lo, hi := wbase, wbase+written-1
				var resp server.QueryResponse
				err := postJSON(client, base+"/tables/"+*table+"/query",
					writerRangeQuery(mc, k, lo, hi), &resp, http.StatusOK)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d check %d: %v\n", writer, a, err)
					continue
				}
				wantSum := written * (2*wbase + written - 1) / 2
				ok := resp.Count == written &&
					resp.Sum != nil && *resp.Sum == wantSum &&
					resp.Min != nil && *resp.Min == wbase &&
					resp.Max != nil && *resp.Max == wbase+written-1
				if !ok {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d: growing oracle mismatch after %d rows: %+v\n",
						writer, written, resp)
				}
				writerChecks.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *sessions * *queries
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("loadgen: %d sessions × %d queries in %v (%.0f qps)\n",
		*sessions, *queries, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("loadgen: latency p50=%v p95=%v p99=%v max=%v  mean batch=%.2f\n",
			pct(latencies, 0.50), pct(latencies, 0.95), pct(latencies, 0.99),
			latencies[len(latencies)-1],
			float64(batchSum.Load())/float64(total-int(failures.Load())))
	}

	// End-of-run summary: per-session quantiles and error counts, then
	// the aggregate throughput split by traffic kind.
	sort.Slice(perSession, func(i, j int) bool { return perSession[i].id < perSession[j].id })
	for _, ss := range perSession {
		fmt.Printf("loadgen: session %2d: p50=%v p99=%v errors=%d\n", ss.id, ss.p50, ss.p99, ss.errors)
	}
	fmt.Printf("loadgen: throughput: %.0f queries/s", float64(total)/elapsed.Seconds())
	if appendedRows.Load() > 0 && !*verifyOnly {
		fmt.Printf(", %.0f appended rows/s", float64(appendedRows.Load())/elapsed.Seconds())
	}
	fmt.Printf("; %d transport errors\n", failures.Load())
	if shedCount.Load() > 0 {
		fmt.Printf("loadgen: overload: %d requests shed (429), %d retried after backoff\n",
			shedCount.Load(), retryCount.Load())
	}

	if writerMode {
		if *verifyOnly {
			fmt.Printf("loadgen: verified %d recovered writer ranges (%d rows, %d checks) in %v\n",
				*writers, appendedRows.Load(), writerChecks.Load(), elapsed.Round(time.Millisecond))
		} else {
			fmt.Printf("loadgen: %d writers appended %d rows (%d growing-oracle checks)\n",
				*writers, appendedRows.Load(), writerChecks.Load())
		}
	}
	if *verifyOnly {
		fmt.Printf("loadgen: recovery check completed in %v\n", elapsed.Round(time.Millisecond))
	}

	var info struct {
		Rows         int     `json:"rows"`
		Appends      uint64  `json:"appends"`
		AppendedRows uint64  `json:"appended_rows"`
		Converged    bool    `json:"converged"`
		Progress     float64 `json:"convergence"`
		Phase        string  `json:"phase"`
		IdleRefine   bool    `json:"idle_refine"`
	}
	if err := getJSON(client, base+"/tables/"+*table, &info); err == nil {
		fmt.Printf("loadgen: table rows=%d appended=%d phase=%s convergence=%.2f converged=%v idle_refine=%v\n",
			info.Rows, info.AppendedRows, info.Phase, info.Progress, info.Converged, info.IdleRefine)
		if writerMode {
			if want := uint64(*n) + appendedRows.Load(); uint64(info.Rows) != want {
				fatal("table rows %d after ingest, want %d", info.Rows, want)
			}
			if info.AppendedRows != appendedRows.Load() {
				fatal("table appended_rows %d, want %d", info.AppendedRows, appendedRows.Load())
			}
		}
	}

	// Verify-only runs never drop: the recovered table (and its on-disk
	// state) belongs to whoever loaded it.
	if !*keep && !*verifyOnly {
		req, _ := http.NewRequest(http.MethodDelete, base+"/tables/"+*table, nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	}

	if failures.Load() > 0 || mismatches.Load() > 0 {
		fatal("%d transport failures, %d answer mismatches", failures.Load(), mismatches.Load())
	}
	if oracle != nil {
		fmt.Printf("loadgen: all %d answers match the library oracle\n", total)
	}
}

// randomQuery builds one request in both library and wire forms: a mix
// of range scans of varying selectivity, open-ended ranges, and point
// probes, with varying aggregate sets. In writer mode (bounded = true)
// the open-ended AtLeast is replaced by AtMost: writers append values
// above 2n while the local oracle holds only the loaded column, so
// reader predicates must stay below the writers' ranges (Range tops
// out below 2n; Point and AtMost stay within the loaded domain) for
// exact checking to remain possible while the table grows.
func randomQuery(rng *rand.Rand, n int64, bounded bool) (progidx.Request, server.QueryRequest) {
	var (
		pred progidx.Predicate
		spec server.PredSpec
	)
	switch rng.Intn(8) {
	case 0:
		v := rng.Int63n(n)
		pred, spec = progidx.Point(v), server.PredSpec{Kind: "point", Value: &v}
	case 1:
		v := rng.Int63n(n)
		if bounded {
			pred, spec = progidx.AtMost(v), server.PredSpec{Kind: "atmost", Value: &v}
		} else {
			pred, spec = progidx.AtLeast(v), server.PredSpec{Kind: "atleast", Value: &v}
		}
	case 2:
		v := rng.Int63n(n)
		pred, spec = progidx.AtMost(v), server.PredSpec{Kind: "atmost", Value: &v}
	default:
		lo := rng.Int63n(n)
		hi := lo + rng.Int63n(n/4+1)
		pred, spec = progidx.Range(lo, hi), server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi}
	}
	var (
		aggs  progidx.Aggregates
		names []string
	)
	if rng.Intn(2) == 0 {
		aggs, names = progidx.Sum|progidx.Count, []string{"sum", "count"}
	} else {
		aggs, names = progidx.AllAggregates, []string{"sum", "count", "min", "max", "avg"}
	}
	return progidx.Request{Pred: pred, Aggs: aggs}, server.QueryRequest{Pred: spec, Aggs: names}
}

// colNames is the schema used for multi-column runs: c0..c{k-1},
// matching what -verify-only must reconstruct after a restart.
func colNames(k int) []string {
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	return names
}

// mcPred is one column predicate in local (oracle) form: an inclusive
// value window on one column, with open ends at the int64 extremes.
type mcPred struct {
	col    int
	lo, hi int64
}

// mcRandomQuery builds a composite query in both oracle and wire
// forms: always a bounded range on the clustered c0 — which keeps the
// conjunction disjoint from writer tuples (all above 2n) even while
// the table grows — plus a coin-flipped extra predicate per remaining
// column, aggregated over a random target column.
func mcRandomQuery(rng *rand.Rand, n int64, k int) ([]mcPred, int, server.QueryRequest) {
	lo := rng.Int63n(n)
	hi := lo + rng.Int63n(n/8+1)
	preds := []mcPred{{col: 0, lo: lo, hi: hi}}
	wire := server.QueryRequest{
		Predicates: []server.ColPredSpec{
			{Col: "c0", PredSpec: server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi}},
		},
		Aggs: []string{"sum", "count", "min", "max"},
	}
	for c := 1; c < k; c++ {
		if rng.Intn(2) != 0 {
			continue
		}
		name := fmt.Sprintf("c%d", c)
		v := rng.Int63n(n)
		switch rng.Intn(3) {
		case 0:
			w := v + rng.Int63n(n/2+1)
			preds = append(preds, mcPred{col: c, lo: v, hi: w})
			wire.Predicates = append(wire.Predicates, server.ColPredSpec{
				Col: name, PredSpec: server.PredSpec{Kind: "range", Lo: &v, Hi: &w}})
		case 1:
			preds = append(preds, mcPred{col: c, lo: v, hi: int64(1)<<62 - 1})
			wire.Predicates = append(wire.Predicates, server.ColPredSpec{
				Col: name, PredSpec: server.PredSpec{Kind: "atleast", Value: &v}})
		default:
			preds = append(preds, mcPred{col: c, lo: -(int64(1) << 62), hi: v})
			wire.Predicates = append(wire.Predicates, server.ColPredSpec{
				Col: name, PredSpec: server.PredSpec{Kind: "atmost", Value: &v}})
		}
	}
	target := rng.Intn(k)
	wire.Target = fmt.Sprintf("c%d", target)
	return preds, target, wire
}

// mcMatches verifies a composite answer against a brute-force scan of
// the locally regenerated rows: a row matches when every predicate
// accepts its column value, and the target column's values of the
// matches feed count/sum/min/max.
func mcMatches(flat []int64, k int, preds []mcPred, target int, resp server.QueryResponse) bool {
	var (
		count, sum int64
		mn         = int64(math.MaxInt64)
		mx         = int64(math.MinInt64)
	)
	rows := len(flat) / k
	for i := 0; i < rows; i++ {
		ok := true
		for _, p := range preds {
			v := flat[i*k+p.col]
			if v < p.lo || v > p.hi {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		tv := flat[i*k+target]
		count++
		sum += tv
		if tv < mn {
			mn = tv
		}
		if tv > mx {
			mx = tv
		}
	}
	if resp.Count != count {
		return false
	}
	if resp.Sum == nil || *resp.Sum != sum {
		return false
	}
	if count > 0 {
		if resp.Min == nil || *resp.Min != mn {
			return false
		}
		if resp.Max == nil || *resp.Max != mx {
			return false
		}
	}
	return true
}

// writerRangeQuery is the writers' closed-form check in wire form: the
// legacy single-predicate query on one-column tables, and the same
// range as a composite query (predicate on c0, aggregate over the last
// column) on multi-column tables, so the planner path serves it.
func writerRangeQuery(mc bool, k int, lo, hi int64) server.QueryRequest {
	qr := server.QueryRequest{Aggs: []string{"sum", "count", "min", "max"}}
	if mc {
		qr.Predicates = []server.ColPredSpec{
			{Col: "c0", PredSpec: server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi}},
		}
		qr.Target = fmt.Sprintf("c%d", k-1)
	} else {
		qr.Pred = server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi}
	}
	return qr
}

// matches replays req on the local oracle index and compares every
// requested aggregate with the server's response.
func matches(oracle progidx.Index, req progidx.Request, resp server.QueryResponse) bool {
	want, err := oracle.Execute(req)
	if err != nil {
		return false
	}
	if resp.Count != want.Count {
		return false
	}
	if want.Aggs.Has(progidx.Sum) && (resp.Sum == nil || *resp.Sum != want.Sum) {
		return false
	}
	if v, ok := want.MinOk(); ok && (resp.Min == nil || *resp.Min != v) {
		return false
	}
	if v, ok := want.MaxOk(); ok && (resp.Max == nil || *resp.Max != v) {
		return false
	}
	if v, ok := want.AvgOk(); ok && (resp.Avg == nil || *resp.Avg != v) {
		return false
	}
	return true
}

// waitForReady polls /healthz until the server answers 200 ("ready"):
// a durable progidxd serves 503 starting/recovering while it replays
// its WAL, and a just-exec'd one may not be listening at all yet.
func waitForReady(client *http.Client, base string, timeout time.Duration) error {
	if timeout <= 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	last := "no response yet"
	for {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			last = err.Error()
		} else {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v (%s)", timeout, last)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sessionSummary is one query session's end-of-run line: its latency
// quantiles and how many of its requests failed in transport.
type sessionSummary struct {
	id       int
	p50, p99 time.Duration
	errors   int
}

func pct(sorted []time.Duration, q float64) time.Duration {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

// Overload accounting: a 429 is load shedding, not a failure — the
// server is explicitly asking the client to slow down, and a client
// that counts it as an error (or hammers on regardless) defeats the
// protection. postJSON honors the Retry-After hint with jittered
// backoff and retries up to maxRetries times; only exhausting the
// retry budget surfaces as an error.
var (
	shedCount  atomic.Uint64 // 429 responses received
	retryCount atomic.Uint64 // backoff-then-retry cycles taken
	maxRetries int           // set from -retries in main
)

func postJSON(client *http.Client, url string, body, out any, wantStatus int) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		payload, _ := io.ReadAll(resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && wantStatus != http.StatusTooManyRequests {
			shedCount.Add(1)
			if attempt >= maxRetries {
				return fmt.Errorf("%s: still shed (429) after %d retries: %s", url, attempt, bytes.TrimSpace(payload))
			}
			retryCount.Add(1)
			time.Sleep(shedBackoff(retryAfter, attempt))
			continue
		}
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(payload))
		}
		if out != nil {
			return json.Unmarshal(payload, out)
		}
		return nil
	}
}

// shedBackoff converts the server's Retry-After hint (whole seconds)
// into a sleep: capped at 2s so an over-capacity smoke run still
// finishes, and jittered to half-to-full so concurrent sessions spread
// their retry waves instead of re-colliding. Without a usable hint it
// doubles from 100ms per attempt.
func shedBackoff(retryAfter string, attempt int) time.Duration {
	if attempt > 4 {
		attempt = 4
	}
	d := 100 * time.Millisecond << uint(attempt)
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
