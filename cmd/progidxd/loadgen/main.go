// Command loadgen drives a running progidxd with N concurrent query
// sessions against one table, verifying every server answer against
// the library executed locally (the data is generated from a shared
// seed, so client and server hold identical columns). It is both the
// demo client for the serving layer and the CI end-to-end smoke test:
// it exits non-zero on any transport error or answer mismatch.
//
// With -writers > 0 it runs a mixed reader/writer workload: writer
// sessions ingest batches through POST /tables/{name}/append and check
// the server against a growing oracle. Every writer owns a value range
// disjoint from the loaded data and from the other writers, so exact
// answers stay checkable for everyone while the table grows: readers
// keep verifying the loaded domain (invariant under appends), and each
// writer verifies the rows it has appended so far (count and closed-
// form sum over its private range — nobody else writes there).
//
// With -verify-only it loads nothing: it expects the table to already
// exist on the server (recovered from a durable -datadir after a crash
// or restart) with the same -n/-seed/-writers/-appends/-append-batch a
// previous run used, rebuilds the identical local oracle, and verifies
// reader queries plus every writer's closed-form range — the crash-
// recovery end of the CI smoke test.
//
// Before doing anything it polls /healthz until the server reports
// ready (a durable daemon answers 503 while it replays its WAL), so it
// can be pointed at a just-started progidxd without racing recovery.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7171 -n 200000 -sessions 8 -queries 50
//	loadgen -addr 127.0.0.1:7171 -n 200000 -sessions 8 -writers 2 -shards 4
//	loadgen -addr 127.0.0.1:7171 -n 200000 -writers 2 -verify-only
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7171", "progidxd address (host:port)")
		table      = flag.String("table", "loadgen", "table name to create and query")
		n          = flag.Int("n", 200_000, "rows in the generated table")
		seed       = flag.Int64("seed", 7, "data generator seed (shared with the server)")
		strategy   = flag.String("strategy", "PQ", "index strategy abbreviation")
		delta      = flag.Float64("delta", 0.25, "indexing fraction per query")
		shards     = flag.Int("shards", 0, "range-partition the table into this many index shards (0 = unsharded)")
		encoding   = flag.String("encoding", "", "columnar encoding for the table (raw, auto, forbp, dict; empty = raw)")
		sessions   = flag.Int("sessions", 8, "concurrent query sessions")
		queries    = flag.Int("queries", 50, "queries per session")
		writers    = flag.Int("writers", 0, "concurrent writer sessions appending rows while readers query")
		appends    = flag.Int("appends", 10, "append batches per writer session")
		batchLen   = flag.Int("append-batch", 50, "rows per append batch")
		check      = flag.Bool("check", true, "verify every answer against the local library oracle")
		keep       = flag.Bool("keep", false, "leave the table loaded when done")
		verifyOnly = flag.Bool("verify-only", false, "skip load and appends; verify an existing (recovered) table against the oracle for the same flags")
		waitReady  = flag.Duration("wait-ready", 30*time.Second, "poll /healthz until the server reports ready (0 = don't wait)")
		deadline   = flag.Int("deadline-ms", 0, "per-query deadline_ms sent with reader queries (0 = none)")
		retries    = flag.Int("retries", 8, "max retries when the server sheds a request with 429")
	)
	flag.Parse()
	maxRetries = *retries

	base := "http://" + *addr
	client := &http.Client{Timeout: 60 * time.Second}

	if err := waitForReady(client, base, *waitReady); err != nil {
		fatal("%v", err)
	}

	// Load the table server-side from the shared generator spec, and
	// build the local oracle over the identical column. In verify-only
	// mode the table already exists server-side (recovered from a
	// durable datadir); only the local oracle is rebuilt.
	vals := data.Uniform(*n, *seed)
	if *verifyOnly {
		fmt.Printf("loadgen: verify-only against existing %q (%d loaded rows expected) on %s\n", *table, *n, *addr)
	} else {
		loadBody := server.LoadRequest{
			Name:     *table,
			Generate: &server.GenerateSpec{Kind: "uniform", N: *n, Seed: *seed},
			Options:  &server.OptionsSpec{Strategy: *strategy, Delta: *delta, Shards: *shards, Encoding: *encoding},
		}
		if err := postJSON(client, base+"/tables", loadBody, nil, http.StatusCreated); err != nil {
			fatal("load table: %v", err)
		}
		enc := *encoding
		if enc == "" {
			enc = "raw"
		}
		fmt.Printf("loadgen: loaded %q (%d rows, %s, δ=%g, shards=%d, encoding=%s) on %s\n", *table, *n, *strategy, *delta, *shards, enc, *addr)
	}

	var oracle progidx.Index
	if *check {
		oracle = progidx.Synchronize(progidx.MustNew(vals, progidx.Options{Strategy: progidx.StrategyFullScan}))
	}

	var (
		wg           sync.WaitGroup
		mismatches   atomic.Uint64
		failures     atomic.Uint64
		latMu        sync.Mutex
		latencies    []time.Duration
		perSession   []sessionSummary
		batchSum     atomic.Uint64
		appendedRows atomic.Uint64
		writerChecks atomic.Uint64
	)
	writerMode := *writers > 0
	queryURL := base + "/tables/" + *table + "/query"
	if *deadline > 0 {
		queryURL += fmt.Sprintf("?deadline_ms=%d", *deadline)
	}
	start := time.Now()
	for g := 0; g < *sessions; g++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed*1000 + int64(session)))
			local := make([]time.Duration, 0, *queries)
			errs := 0
			for q := 0; q < *queries; q++ {
				req, wire := randomQuery(rng, int64(*n), writerMode)
				qs := time.Now()
				var resp server.QueryResponse
				err := postJSON(client, queryURL, wire, &resp, http.StatusOK)
				local = append(local, time.Since(qs))
				if err != nil {
					failures.Add(1)
					errs++
					fmt.Fprintf(os.Stderr, "loadgen: session %d query %d: %v\n", session, q, err)
					continue
				}
				batchSum.Add(uint64(resp.BatchSize))
				if oracle != nil && !matches(oracle, req, resp) {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: session %d query %d: answer mismatch for %v\n",
						session, q, req.Pred)
				}
			}
			sorted := append([]time.Duration(nil), local...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			sum := sessionSummary{id: session, errors: errs}
			if len(sorted) > 0 {
				sum.p50, sum.p99 = pct(sorted, 0.50), pct(sorted, 0.99)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			perSession = append(perSession, sum)
			latMu.Unlock()
		}(g)
	}
	// Writer sessions: each owns the value range [base, base+span) —
	// above the loaded domain (and the readers' bounded predicates) and
	// disjoint from every other writer — appending strictly increasing
	// values, so the rows it has written so far have a closed-form
	// count and sum it verifies after every batch. In verify-only mode
	// nothing is appended: a previous run wrote (and was acked for) the
	// full span, so the check runs once against the complete range.
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(writer int) {
			defer wg.Done()
			span := int64(*appends * *batchLen)
			wbase := 2*int64(*n) + int64(writer)*span
			if *verifyOnly {
				appendedRows.Add(uint64(span))
				if !*check {
					return
				}
				lo, hi := wbase, wbase+span-1
				var resp server.QueryResponse
				err := postJSON(client, base+"/tables/"+*table+"/query",
					server.QueryRequest{Pred: server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi},
						Aggs: []string{"sum", "count", "min", "max"}}, &resp, http.StatusOK)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d verify: %v\n", writer, err)
					return
				}
				wantSum := span * (2*wbase + span - 1) / 2
				ok := resp.Count == span &&
					resp.Sum != nil && *resp.Sum == wantSum &&
					resp.Min != nil && *resp.Min == wbase &&
					resp.Max != nil && *resp.Max == wbase+span-1
				if !ok {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d: recovered range [%d,%d] mismatch: %+v\n",
						writer, lo, hi, resp)
				}
				writerChecks.Add(1)
				return
			}
			written := int64(0)
			for a := 0; a < *appends; a++ {
				batch := make([]int64, *batchLen)
				for i := range batch {
					batch[i] = wbase + written + int64(i)
				}
				var ar server.AppendResponse
				if err := postJSON(client, base+"/tables/"+*table+"/append",
					server.AppendRequest{Values: batch}, &ar, http.StatusOK); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d append %d: %v\n", writer, a, err)
					continue
				}
				written += int64(len(batch))
				appendedRows.Add(uint64(len(batch)))
				if !*check {
					continue
				}
				// Growing-oracle check: exactly the rows this writer has
				// appended live in its range, values wbase..wbase+written-1.
				lo, hi := wbase, wbase+written-1
				var resp server.QueryResponse
				err := postJSON(client, base+"/tables/"+*table+"/query",
					server.QueryRequest{Pred: server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi},
						Aggs: []string{"sum", "count", "min", "max"}}, &resp, http.StatusOK)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d check %d: %v\n", writer, a, err)
					continue
				}
				wantSum := written * (2*wbase + written - 1) / 2
				ok := resp.Count == written &&
					resp.Sum != nil && *resp.Sum == wantSum &&
					resp.Min != nil && *resp.Min == wbase &&
					resp.Max != nil && *resp.Max == wbase+written-1
				if !ok {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: writer %d: growing oracle mismatch after %d rows: %+v\n",
						writer, written, resp)
				}
				writerChecks.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *sessions * *queries
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("loadgen: %d sessions × %d queries in %v (%.0f qps)\n",
		*sessions, *queries, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("loadgen: latency p50=%v p95=%v p99=%v max=%v  mean batch=%.2f\n",
			pct(latencies, 0.50), pct(latencies, 0.95), pct(latencies, 0.99),
			latencies[len(latencies)-1],
			float64(batchSum.Load())/float64(total-int(failures.Load())))
	}

	// End-of-run summary: per-session quantiles and error counts, then
	// the aggregate throughput split by traffic kind.
	sort.Slice(perSession, func(i, j int) bool { return perSession[i].id < perSession[j].id })
	for _, ss := range perSession {
		fmt.Printf("loadgen: session %2d: p50=%v p99=%v errors=%d\n", ss.id, ss.p50, ss.p99, ss.errors)
	}
	fmt.Printf("loadgen: throughput: %.0f queries/s", float64(total)/elapsed.Seconds())
	if appendedRows.Load() > 0 && !*verifyOnly {
		fmt.Printf(", %.0f appended rows/s", float64(appendedRows.Load())/elapsed.Seconds())
	}
	fmt.Printf("; %d transport errors\n", failures.Load())
	if shedCount.Load() > 0 {
		fmt.Printf("loadgen: overload: %d requests shed (429), %d retried after backoff\n",
			shedCount.Load(), retryCount.Load())
	}

	if writerMode {
		if *verifyOnly {
			fmt.Printf("loadgen: verified %d recovered writer ranges (%d rows, %d checks) in %v\n",
				*writers, appendedRows.Load(), writerChecks.Load(), elapsed.Round(time.Millisecond))
		} else {
			fmt.Printf("loadgen: %d writers appended %d rows (%d growing-oracle checks)\n",
				*writers, appendedRows.Load(), writerChecks.Load())
		}
	}
	if *verifyOnly {
		fmt.Printf("loadgen: recovery check completed in %v\n", elapsed.Round(time.Millisecond))
	}

	var info struct {
		Rows         int     `json:"rows"`
		Appends      uint64  `json:"appends"`
		AppendedRows uint64  `json:"appended_rows"`
		Converged    bool    `json:"converged"`
		Progress     float64 `json:"convergence"`
		Phase        string  `json:"phase"`
		IdleRefine   bool    `json:"idle_refine"`
	}
	if err := getJSON(client, base+"/tables/"+*table, &info); err == nil {
		fmt.Printf("loadgen: table rows=%d appended=%d phase=%s convergence=%.2f converged=%v idle_refine=%v\n",
			info.Rows, info.AppendedRows, info.Phase, info.Progress, info.Converged, info.IdleRefine)
		if writerMode {
			if want := uint64(*n) + appendedRows.Load(); uint64(info.Rows) != want {
				fatal("table rows %d after ingest, want %d", info.Rows, want)
			}
			if info.AppendedRows != appendedRows.Load() {
				fatal("table appended_rows %d, want %d", info.AppendedRows, appendedRows.Load())
			}
		}
	}

	// Verify-only runs never drop: the recovered table (and its on-disk
	// state) belongs to whoever loaded it.
	if !*keep && !*verifyOnly {
		req, _ := http.NewRequest(http.MethodDelete, base+"/tables/"+*table, nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	}

	if failures.Load() > 0 || mismatches.Load() > 0 {
		fatal("%d transport failures, %d answer mismatches", failures.Load(), mismatches.Load())
	}
	if oracle != nil {
		fmt.Printf("loadgen: all %d answers match the library oracle\n", total)
	}
}

// randomQuery builds one request in both library and wire forms: a mix
// of range scans of varying selectivity, open-ended ranges, and point
// probes, with varying aggregate sets. In writer mode (bounded = true)
// the open-ended AtLeast is replaced by AtMost: writers append values
// above 2n while the local oracle holds only the loaded column, so
// reader predicates must stay below the writers' ranges (Range tops
// out below 2n; Point and AtMost stay within the loaded domain) for
// exact checking to remain possible while the table grows.
func randomQuery(rng *rand.Rand, n int64, bounded bool) (progidx.Request, server.QueryRequest) {
	var (
		pred progidx.Predicate
		spec server.PredSpec
	)
	switch rng.Intn(8) {
	case 0:
		v := rng.Int63n(n)
		pred, spec = progidx.Point(v), server.PredSpec{Kind: "point", Value: &v}
	case 1:
		v := rng.Int63n(n)
		if bounded {
			pred, spec = progidx.AtMost(v), server.PredSpec{Kind: "atmost", Value: &v}
		} else {
			pred, spec = progidx.AtLeast(v), server.PredSpec{Kind: "atleast", Value: &v}
		}
	case 2:
		v := rng.Int63n(n)
		pred, spec = progidx.AtMost(v), server.PredSpec{Kind: "atmost", Value: &v}
	default:
		lo := rng.Int63n(n)
		hi := lo + rng.Int63n(n/4+1)
		pred, spec = progidx.Range(lo, hi), server.PredSpec{Kind: "range", Lo: &lo, Hi: &hi}
	}
	var (
		aggs  progidx.Aggregates
		names []string
	)
	if rng.Intn(2) == 0 {
		aggs, names = progidx.Sum|progidx.Count, []string{"sum", "count"}
	} else {
		aggs, names = progidx.AllAggregates, []string{"sum", "count", "min", "max", "avg"}
	}
	return progidx.Request{Pred: pred, Aggs: aggs}, server.QueryRequest{Pred: spec, Aggs: names}
}

// matches replays req on the local oracle index and compares every
// requested aggregate with the server's response.
func matches(oracle progidx.Index, req progidx.Request, resp server.QueryResponse) bool {
	want, err := oracle.Execute(req)
	if err != nil {
		return false
	}
	if resp.Count != want.Count {
		return false
	}
	if want.Aggs.Has(progidx.Sum) && (resp.Sum == nil || *resp.Sum != want.Sum) {
		return false
	}
	if v, ok := want.MinOk(); ok && (resp.Min == nil || *resp.Min != v) {
		return false
	}
	if v, ok := want.MaxOk(); ok && (resp.Max == nil || *resp.Max != v) {
		return false
	}
	if v, ok := want.AvgOk(); ok && (resp.Avg == nil || *resp.Avg != v) {
		return false
	}
	return true
}

// waitForReady polls /healthz until the server answers 200 ("ready"):
// a durable progidxd serves 503 starting/recovering while it replays
// its WAL, and a just-exec'd one may not be listening at all yet.
func waitForReady(client *http.Client, base string, timeout time.Duration) error {
	if timeout <= 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	last := "no response yet"
	for {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			last = err.Error()
		} else {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v (%s)", timeout, last)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sessionSummary is one query session's end-of-run line: its latency
// quantiles and how many of its requests failed in transport.
type sessionSummary struct {
	id       int
	p50, p99 time.Duration
	errors   int
}

func pct(sorted []time.Duration, q float64) time.Duration {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

// Overload accounting: a 429 is load shedding, not a failure — the
// server is explicitly asking the client to slow down, and a client
// that counts it as an error (or hammers on regardless) defeats the
// protection. postJSON honors the Retry-After hint with jittered
// backoff and retries up to maxRetries times; only exhausting the
// retry budget surfaces as an error.
var (
	shedCount  atomic.Uint64 // 429 responses received
	retryCount atomic.Uint64 // backoff-then-retry cycles taken
	maxRetries int           // set from -retries in main
)

func postJSON(client *http.Client, url string, body, out any, wantStatus int) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		payload, _ := io.ReadAll(resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && wantStatus != http.StatusTooManyRequests {
			shedCount.Add(1)
			if attempt >= maxRetries {
				return fmt.Errorf("%s: still shed (429) after %d retries: %s", url, attempt, bytes.TrimSpace(payload))
			}
			retryCount.Add(1)
			time.Sleep(shedBackoff(retryAfter, attempt))
			continue
		}
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(payload))
		}
		if out != nil {
			return json.Unmarshal(payload, out)
		}
		return nil
	}
}

// shedBackoff converts the server's Retry-After hint (whole seconds)
// into a sleep: capped at 2s so an over-capacity smoke run still
// finishes, and jittered to half-to-full so concurrent sessions spread
// their retry waves instead of re-colliding. Without a usable hint it
// doubles from 100ms per attempt.
func shedBackoff(retryAfter string, attempt int) time.Duration {
	if attempt > 4 {
		attempt = 4
	}
	d := 100 * time.Millisecond << uint(attempt)
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
