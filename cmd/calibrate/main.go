// Command calibrate measures the Table 1 cost-model constants on the
// current machine and prints them together with derived pass costs for
// a few column sizes. Useful for sanity-checking budgets before running
// cmd/experiments with -calibrate.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
)

func main() {
	p := core.CalibrateParams()
	fmt.Printf("ω (seq page read)   = %.3e s\n", p.OmegaReadPage)
	fmt.Printf("κ (seq page write)  = %.3e s\n", p.KappaWritePage)
	fmt.Printf("φ (random access)   = %.3e s\n", p.PhiRandomPage)
	fmt.Printf("γ (elems per page)  = %d\n", p.Gamma)
	fmt.Printf("σ (swap per elem)   = %.3e s\n", p.SigmaSwap)
	fmt.Printf("τ (block alloc)     = %.3e s\n", p.TauAlloc)
	m := costmodel.New(p)
	fmt.Println()
	fmt.Println("n          t_scan      t_pivot     t_swap      t_bucket")
	for _, n := range []int{1 << 20, 1 << 24, 1 << 27} {
		fmt.Printf("%-10d %.3e  %.3e  %.3e  %.3e\n",
			n, m.ScanTime(n), m.PivotTime(n), m.SwapTime(n), m.BucketTime(n, 1024))
	}
}
